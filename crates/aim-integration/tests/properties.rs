//! Randomized property tests over the core invariants.
//!
//! Each test draws a few hundred cases from the deterministic in-tree
//! PRNG (`aim_workloads::rng`) with a fixed seed, so failures are exactly
//! reproducible while still sweeping a wide input space.

use aim_core::partial_order::{merge_partial_orders, PartialOrder};
use aim_core::{
    generate_candidates, knapsack_select, rank_candidates, rank_candidates_unbatched,
    rank_candidates_with, refine_selection, CandidateGenConfig, RankedCandidate,
};
use aim_exec::{CostModel, Engine};
use aim_monitor::{select_workload, SelectionConfig, WorkloadMonitor, WorkloadQuery};
use aim_sql::normalize::normalize_statement;
use aim_sql::parse_statement;
use aim_storage::{
    ColumnDef, ColumnType, Database, Histogram, IndexDef, IoStats, TableSchema, Value,
};
use aim_workloads::rng::{Rng, SeedableRng, StdRng};
use std::collections::BTreeSet;
use std::ops::Bound;

// ---------------------------------------------------------- partial orders

/// A random partial order over a subset of col0..col5: 1–3 disjoint
/// unordered partitions of 1–3 columns each.
fn random_partial_order(rng: &mut StdRng) -> PartialOrder {
    let n_parts = rng.gen_range(1..=3usize);
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut parts: Vec<Vec<String>> = Vec::new();
    for _ in 0..n_parts {
        let part_size = rng.gen_range(1..=3usize);
        let mut fresh = Vec::new();
        for _ in 0..part_size {
            let c = rng.gen_range(0..6usize);
            if seen.insert(c) {
                fresh.push(format!("col{c}"));
            }
        }
        if !fresh.is_empty() {
            parts.push(fresh);
        }
    }
    if parts.is_empty() {
        parts.push(vec![format!("col{}", rng.gen_range(0..6usize))]);
    }
    PartialOrder::new(parts).expect("disjoint by construction")
}

#[test]
fn merge_result_satisfies_both_inputs() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..300 {
        let p = random_partial_order(&mut rng);
        let q = random_partial_order(&mut rng);
        let Some(m) = p.merge_pairwise(&q) else {
            continue;
        };
        // Same column set as Q.
        assert_eq!(m.columns(), q.columns());
        let total = m.total_order();
        assert!(m.is_satisfied_by(&total));
        // P's columns form a prefix of the merged order.
        let p_cols = p.columns();
        let prefix: BTreeSet<String> = total[..p_cols.len()].iter().cloned().collect();
        assert_eq!(prefix, p_cols);
        // Pairwise orderings of both inputs are respected.
        for a in &p_cols {
            for b in &p_cols {
                if p.precedes(a, b) {
                    assert!(!m.precedes(b, a), "merge broke {a} < {b} from P");
                }
            }
        }
        let q_cols = q.columns();
        for a in &q_cols {
            for b in &q_cols {
                if q.precedes(a, b) {
                    assert!(!m.precedes(b, a), "merge broke {a} < {b} from Q");
                }
            }
        }
    }
}

#[test]
fn merge_with_self_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..300 {
        let p = random_partial_order(&mut rng);
        let m = p.merge_pairwise(&p).expect("self-merge always allowed");
        assert_eq!(m, p);
    }
}

#[test]
fn merge_closure_terminates_and_contains_inputs() {
    let mut rng = StdRng::seed_from_u64(0xC10);
    for _ in 0..100 {
        let orders: Vec<PartialOrder> = (0..rng.gen_range(1..=4usize))
            .map(|_| random_partial_order(&mut rng))
            .collect();
        let merged = merge_partial_orders(&orders, true);
        for o in &orders {
            assert!(merged.contains(o), "closure lost an input order");
        }
        // Fixed point: merging again adds nothing.
        let again = merge_partial_orders(&merged, true);
        assert_eq!(again.len(), merged.len());
    }
}

#[test]
fn total_order_always_satisfies() {
    let mut rng = StdRng::seed_from_u64(0xD0);
    for _ in 0..300 {
        let p = random_partial_order(&mut rng);
        assert!(p.is_satisfied_by(&p.total_order()));
        assert_eq!(p.total_order().len(), p.width());
    }
}

// ------------------------------------------------------------- normalizer

fn random_ident(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=8usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

#[test]
fn fingerprint_invariant_under_literals() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    let f2 = normalize_statement(
        &parse_statement("SELECT id FROM t WHERE x = 0 AND y > 0 AND z = 'zz'").expect("valid"),
    )
    .fingerprint;
    for _ in 0..200 {
        let a = rng.gen_range(0..1000i64);
        let b = rng.gen_range(0..1000i64);
        let s = random_ident(&mut rng);
        let q1 = format!("SELECT id FROM t WHERE x = {a} AND y > {b} AND z = '{s}'");
        let f1 = normalize_statement(&parse_statement(&q1).expect("valid")).fingerprint;
        assert_eq!(f1, f2, "literals changed the fingerprint: {q1}");
    }
}

#[test]
fn parse_display_roundtrip_stable() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    for _ in 0..200 {
        let a = rng.gen_range(0..100i64);
        let b = rng.gen_range(0..100i64);
        let sql = format!(
            "SELECT x, COUNT(*) FROM t WHERE a = {a} AND (b > {b} OR c IN (1, 2)) \
             GROUP BY x ORDER BY x ASC LIMIT 5"
        );
        let stmt = parse_statement(&sql).expect("valid");
        let reparsed = parse_statement(&stmt.to_string()).expect("display is parseable");
        assert_eq!(stmt, reparsed);
    }
}

// ------------------------------------------------------------- histograms

#[test]
fn histogram_mass_conserved() {
    let mut rng = StdRng::seed_from_u64(0x41);
    for _ in 0..150 {
        let n = rng.gen_range(1..300usize);
        let mut values: Vec<i64> = (0..n).map(|_| rng.gen_range(-500..500i64)).collect();
        values.sort();
        let vals: Vec<Value> = values.iter().map(|v| Value::Int(*v)).collect();
        let h = Histogram::build(&vals, 16);
        assert_eq!(h.total(), vals.len() as u64);
        // Full-range estimate recovers (approximately) everything.
        let est = h.estimate_range(Bound::Unbounded, Bound::Unbounded);
        assert!((est - vals.len() as f64).abs() < 1.0 + vals.len() as f64 * 0.1);
    }
}

#[test]
fn histogram_eq_estimate_bounded() {
    let mut rng = StdRng::seed_from_u64(0x42);
    for _ in 0..150 {
        let n = rng.gen_range(1..200usize);
        let mut values: Vec<i64> = (0..n).map(|_| rng.gen_range(0..50i64)).collect();
        values.sort();
        let probe = rng.gen_range(0..50i64);
        let vals: Vec<Value> = values.iter().map(|v| Value::Int(*v)).collect();
        let h = Histogram::build(&vals, 8);
        let est = h.estimate_eq(&Value::Int(probe));
        assert!(est >= 0.0);
        assert!(est <= vals.len() as f64);
    }
}

// ------------------------------------- executor: index/scan equivalence

fn int_table(rng: &mut StdRng, columns: &[&str], max_rows: usize, domain: i64) -> Database {
    let mut defs = vec![ColumnDef::new("id", ColumnType::Int)];
    defs.extend(columns.iter().map(|c| ColumnDef::new(*c, ColumnType::Int)));
    let mut db = Database::new();
    db.create_table(TableSchema::new("t", defs, &["id"]).expect("valid"))
        .expect("fresh");
    let mut io = IoStats::new();
    let n = rng.gen_range(1..=max_rows);
    for i in 0..n {
        let mut row = vec![Value::Int(i as i64)];
        row.extend((0..columns.len()).map(|_| Value::Int(rng.gen_range(0..domain))));
        db.table_mut("t")
            .expect("exists")
            .insert(row, &mut io)
            .expect("unique");
    }
    db.analyze_all();
    db
}

#[test]
fn indexed_execution_equals_scan() {
    let cols = ["a", "b", "c"];
    let ops = ["=", ">", "<", ">=", "<="];
    let mut rng = StdRng::seed_from_u64(0x5EEC);
    let engine = Engine::new();
    for _ in 0..64 {
        let mut db = int_table(&mut rng, &cols, 120, 30);
        let n_preds = rng.gen_range(1..=2usize);
        let where_clause: Vec<String> = (0..n_preds)
            .map(|_| {
                format!(
                    "{} {} {}",
                    cols[rng.gen_range(0..cols.len())],
                    ops[rng.gen_range(0..ops.len())],
                    rng.gen_range(0..30i64)
                )
            })
            .collect();
        let sql = format!("SELECT id, a, b, c FROM t WHERE {}", where_clause.join(" AND "));
        let stmt = parse_statement(&sql).expect("valid");

        let mut base = engine.execute(&mut db, &stmt).expect("executes").rows;
        base.sort();

        let index_cols: BTreeSet<&str> = (0..rng.gen_range(1..=2usize))
            .map(|_| cols[rng.gen_range(0..cols.len())])
            .collect();
        let cols_v: Vec<String> = index_cols.iter().map(|s| s.to_string()).collect();
        let mut io = IoStats::new();
        db.create_index(IndexDef::new("ix", "t", cols_v), &mut io)
            .expect("valid index");
        db.analyze_all();
        let mut indexed = engine.execute(&mut db, &stmt).expect("executes").rows;
        indexed.sort();

        assert_eq!(base, indexed, "index changed results for {sql}");
    }
}

#[test]
fn or_predicates_unchanged_by_indexes() {
    // Single-table OR: with per-branch indexes the planner may pick an
    // index-merge union; results must match the plain scan.
    let mut rng = StdRng::seed_from_u64(0x0A);
    let engine = Engine::new();
    for _ in 0..64 {
        let mut db = int_table(&mut rng, &["a", "b"], 100, 20);
        let (v1, v2, v3) = (
            rng.gen_range(0..20i64),
            rng.gen_range(0..20i64),
            rng.gen_range(0..20i64),
        );
        let sql = format!("SELECT id FROM t WHERE (a = {v1} AND b = {v2}) OR b = {v3}");
        let stmt = parse_statement(&sql).expect("valid");
        let mut base = engine.execute(&mut db, &stmt).expect("executes").rows;
        base.sort();
        let mut io = IoStats::new();
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .expect("valid");
        db.create_index(IndexDef::new("ix_b", "t", vec!["b".into()]), &mut io)
            .expect("valid");
        db.analyze_all();
        let mut indexed = engine.execute(&mut db, &stmt).expect("executes").rows;
        indexed.sort();
        assert_eq!(base, indexed);
    }
}

#[test]
fn order_by_limit_agrees_with_full_sort() {
    let mut rng = StdRng::seed_from_u64(0x0B);
    let engine = Engine::new();
    for _ in 0..64 {
        let mut db = int_table(&mut rng, &["a", "b"], 100, 50);
        let limit = rng.gen_range(1..20usize);
        let sql = format!("SELECT a, id FROM t ORDER BY a LIMIT {limit}");
        let stmt = parse_statement(&sql).expect("valid");
        let plain = engine.execute(&mut db, &stmt).expect("executes").rows;
        // With an order-providing index: early-termination path.
        let mut io = IoStats::new();
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .expect("valid index");
        db.analyze_all();
        let fast = engine.execute(&mut db, &stmt).expect("executes").rows;
        // `a` values must match position-wise (ties may reorder ids).
        assert_eq!(plain.len(), fast.len());
        for (p, f) in plain.iter().zip(&fast) {
            assert_eq!(&p[0], &f[0]);
        }
    }
}

// --------------------------------------------------------------- storage

#[test]
fn storage_accounting_is_consistent() {
    // Materialized size tracking must stay consistent through
    // insert/create/drop cycles.
    let mut rng = StdRng::seed_from_u64(0x5A);
    for _ in 0..50 {
        let n_rows = rng.gen_range(1..200usize);
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                ],
                &["id"],
            )
            .expect("valid"),
        )
        .expect("fresh");
        let mut io = IoStats::new();
        for i in 0..n_rows as i64 {
            db.table_mut("t")
                .expect("exists")
                .insert(vec![Value::Int(i), Value::Int(i % 7)], &mut io)
                .expect("unique");
        }
        assert_eq!(db.total_secondary_index_bytes(), 0);
        db.create_index(IndexDef::new("ix", "t", vec!["a".into()]), &mut io)
            .expect("valid index");
        let size = db.total_secondary_index_bytes();
        assert!(size > 0);
        db.drop_index("t", "ix").expect("exists");
        assert_eq!(db.total_secondary_index_bytes(), 0);
    }
}

// ---------------------------------------------------------------- parser

#[test]
fn parser_never_panics_on_arbitrary_input() {
    // Any input must produce Ok or Err — never a panic.
    let mut rng = StdRng::seed_from_u64(0x9A51C);
    for _ in 0..512 {
        let len = rng.gen_range(0..=120usize);
        let input: String = (0..len)
            .map(|_| {
                // Printable-heavy mix with occasional arbitrary unicode.
                if rng.gen_bool(0.9) {
                    (rng.gen_range(0x20..0x7fu32) as u8) as char
                } else {
                    char::from_u32(rng.gen_range(0..0x11_0000u32)).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let _ = parse_statement(&input);
    }
}

#[test]
fn parser_never_panics_on_sql_like_soup() {
    const TOKENS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "AND", "OR", "GROUP", "BY", "ORDER", "LIMIT", "(", ")", ",",
        "=", ">", "t", "x", "1", "'s'", "*", "IN", "NOT", "NULL",
    ];
    let mut rng = StdRng::seed_from_u64(0x500);
    for _ in 0..512 {
        let n = rng.gen_range(0..25usize);
        let sql = (0..n)
            .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_statement(&sql);
    }
}

// ------------------------------------------------------ prepared statements

#[test]
fn bind_then_normalize_roundtrips() {
    use aim_exec::{bind_params, param_count};
    let mut rng = StdRng::seed_from_u64(0xB1D);
    for _ in 0..200 {
        let a = rng.gen_range(-1000..1000i64);
        let b = rng.gen_range(-1000..1000i64);
        let s = random_ident(&mut rng);
        let stmt = parse_statement(
            "SELECT id FROM t WHERE x = ? AND y > ? AND z = ? ORDER BY id LIMIT 3",
        )
        .expect("valid");
        assert_eq!(param_count(&stmt), 3);
        let bound =
            bind_params(&stmt, &[Value::Int(a), Value::Int(b), Value::Str(s)]).expect("binds");
        // Normalizing the bound statement recovers the prepared fingerprint.
        assert_eq!(
            normalize_statement(&bound).fingerprint,
            normalize_statement(&stmt).fingerprint
        );
        // And binding is exact: the bound text contains the literal values.
        assert!(bound.to_string().contains(&a.to_string()));
    }
}

// ----------------------------------------------------------- sampled clones

#[test]
fn sample_is_subset_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xCA);
    for _ in 0..24 {
        let n_rows = rng.gen_range(10..400i64);
        let fraction: f64 = rng.gen::<f64>();
        let seed = rng.gen_range(0..1000u64);
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                ],
                &["id"],
            )
            .expect("valid"),
        )
        .expect("fresh");
        let mut io = IoStats::new();
        for i in 0..n_rows {
            db.table_mut("t")
                .expect("exists")
                .insert(vec![Value::Int(i), Value::Int(i % 5)], &mut io)
                .expect("unique");
        }
        let s = db.sample(fraction, seed);
        let k = s.table("t").expect("exists").row_count();
        assert!(k <= n_rows as usize);
        // Every sampled row exists in the source (subset property).
        let mut io2 = IoStats::new();
        for row in s.table("t").expect("exists").scan_all(&mut io2) {
            let pk = vec![row[0].clone()];
            let mut io3 = IoStats::new();
            assert!(db
                .table("t")
                .expect("exists")
                .pk_lookup(&pk, &mut io3)
                .is_some());
        }
        // Same seed, same sample.
        let s2 = db.sample(fraction, seed);
        assert_eq!(k, s2.table("t").expect("exists").row_count());
    }
}

// ------------------------------------------------------ storage backends

/// Random insert / delete / update / range-scan sequences observe exactly
/// the same results on the disk-backed engine (paged heap + B+-trees) as
/// on the in-memory one — including secondary-index scans — and the disk
/// instance still matches after a close-and-reopen cycle.
#[test]
fn random_ops_are_identical_on_disk_and_memory_backends() {
    let dir = std::env::temp_dir().join(format!(
        "aim-prop-backend-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let schema = || {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("b", ColumnType::Str),
            ],
            &["id"],
        )
        .unwrap()
    };
    let mut mem = Database::new();
    mem.create_table(schema()).unwrap();
    let mut disk = aim_core::BackendSpec::disk(&dir).provision().unwrap();
    disk.create_table(schema()).unwrap();
    let mut io = IoStats::new();
    mem.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
        .unwrap();
    disk.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(0xD15C);
    let row = |pk: i64, rng: &mut StdRng| {
        vec![
            Value::Int(pk),
            Value::Int(rng.gen_range(0..40i64)),
            Value::Str(format!("s{}", rng.gen_range(0..1000u32))),
        ]
    };
    for round in 0..6 {
        for _ in 0..300 {
            let pk = rng.gen_range(0..800i64);
            match rng.gen_range(0..10u32) {
                0..=5 => {
                    let r = row(pk, &mut rng);
                    let a = mem.table_mut("t").unwrap().insert(r.clone(), &mut io);
                    let b = disk.table_mut("t").unwrap().insert(r, &mut io);
                    assert_eq!(a.is_ok(), b.is_ok(), "insert({pk}) diverged");
                }
                6..=7 => {
                    let a = mem
                        .table_mut("t")
                        .unwrap()
                        .delete(&vec![Value::Int(pk)], &mut io)
                        .unwrap();
                    let b = disk
                        .table_mut("t")
                        .unwrap()
                        .delete(&vec![Value::Int(pk)], &mut io)
                        .unwrap();
                    assert_eq!(a, b, "delete({pk}) diverged");
                }
                _ => {
                    let r = row(pk, &mut rng);
                    let a = mem.table_mut("t").unwrap().update(
                        &vec![Value::Int(pk)],
                        r.clone(),
                        &mut io,
                    );
                    let b = disk
                        .table_mut("t")
                        .unwrap()
                        .update(&vec![Value::Int(pk)], r, &mut io);
                    assert_eq!(a.is_ok(), b.is_ok(), "update({pk}) diverged");
                }
            }
        }
        // Range scan over a random PK window plus a secondary-index
        // prefix scan: both backends must produce identical sequences.
        let lo = Value::Int(rng.gen_range(0..400i64));
        let hi = Value::Int(rng.gen_range(400..800i64));
        let mut mio = IoStats::new();
        let mut dio = IoStats::new();
        let m: Vec<_> = mem
            .table("t")
            .unwrap()
            .pk_range(&[], (Bound::Included(&lo), Bound::Excluded(&hi)), &mut mio)
            .into_iter()
            .cloned()
            .collect();
        let d: Vec<_> = disk
            .table("t")
            .unwrap()
            .pk_range(&[], (Bound::Included(&lo), Bound::Excluded(&hi)), &mut dio)
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(m, d, "round {round}: pk_range [{lo:?},{hi:?}) diverged");

        let probe = Value::Int(rng.gen_range(0..40i64));
        let m: Vec<_> = mem
            .table("t")
            .unwrap()
            .index("ix_a")
            .unwrap()
            .scan_prefix_range(
                std::slice::from_ref(&probe),
                (Bound::Unbounded, Bound::Unbounded),
                &mut mio,
            )
            .into_iter()
            .cloned()
            .collect();
        let d: Vec<_> = disk
            .table("t")
            .unwrap()
            .index("ix_a")
            .unwrap()
            .scan_prefix_range(
                std::slice::from_ref(&probe),
                (Bound::Unbounded, Bound::Unbounded),
                &mut mio,
            )
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(m, d, "round {round}: index scan a={probe:?} diverged");
    }

    // Reopen the disk instance: the recovered working set must equal the
    // in-memory reference row for row and entry for entry.
    drop(disk);
    let disk = aim_core::BackendSpec::disk(&dir).provision().unwrap();
    let mut mio = IoStats::new();
    let mut dio = IoStats::new();
    let m: Vec<_> = mem.table("t").unwrap().scan_all(&mut mio).cloned().collect();
    let d: Vec<_> = disk.table("t").unwrap().scan_all(&mut dio).cloned().collect();
    assert_eq!(m, d, "reopened disk table diverged from memory reference");
    assert_eq!(
        mem.table("t").unwrap().index("ix_a").unwrap().len(),
        disk.table("t").unwrap().index("ix_a").unwrap().len(),
        "reopened index cardinality diverged"
    );
    disk.check_consistency().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------ batched costing & LP selection

fn assert_ranked_bit_identical(a: &[RankedCandidate], b: &[RankedCandidate]) {
    assert_eq!(a.len(), b.len(), "ranked lists differ in length");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.candidate.name(), y.candidate.name());
        assert_eq!(x.size_bytes, y.size_bytes);
        assert_eq!(
            x.benefit.to_bits(),
            y.benefit.to_bits(),
            "benefit drifted for {}",
            x.candidate.name()
        );
        assert_eq!(
            x.maintenance.to_bits(),
            y.maintenance.to_bits(),
            "maintenance drifted for {}",
            x.candidate.name()
        );
    }
}

/// Execute each statement `n` times against `db`, recording into a fresh
/// monitor, then select the full observed workload (DML included).
fn observe_workload(db: &mut Database, runs: &[(String, usize)]) -> Vec<WorkloadQuery> {
    let engine = Engine::new();
    let mut m = WorkloadMonitor::new();
    for (sql, n) in runs {
        let stmt = parse_statement(sql).expect("valid");
        for _ in 0..*n {
            let out = engine.execute(db, &stmt).expect("executes");
            m.record(&stmt, &out);
        }
    }
    select_workload(
        &m,
        &SelectionConfig {
            min_executions: 1,
            min_benefit: 0.0,
            max_queries: 100,
            include_dml: true,
        },
    )
}

/// Batched what-if costing must be bit-identical to the per-config
/// reference path across randomized mixed (SELECT + DML) workloads —
/// same candidates, same benefits, same maintenance, to the last bit.
#[test]
fn batched_ranking_matches_per_config_on_random_workloads() {
    let cols = ["a", "b", "c"];
    let ops = ["=", ">", "<", ">="];
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let cm = CostModel::default();
    for case in 0..8 {
        let mut db = int_table(&mut rng, &cols, 150, 25);
        let n_stmts = rng.gen_range(3..=6usize);
        let mut runs: Vec<(String, usize)> = Vec::new();
        for _ in 0..n_stmts {
            let sql = if rng.gen_bool(0.7) {
                let pred = |rng: &mut StdRng| {
                    format!(
                        "{} {} {}",
                        cols[rng.gen_range(0..cols.len())],
                        ops[rng.gen_range(0..ops.len())],
                        rng.gen_range(0..25i64)
                    )
                };
                let p1 = pred(&mut rng);
                if rng.gen_bool(0.5) {
                    let joiner = if rng.gen_bool(0.5) { "AND" } else { "OR" };
                    format!("SELECT id FROM t WHERE {p1} {joiner} {}", pred(&mut rng))
                } else {
                    format!("SELECT id FROM t WHERE {p1}")
                }
            } else {
                format!(
                    "UPDATE t SET {} = {} WHERE id = {}",
                    cols[rng.gen_range(0..cols.len())],
                    rng.gen_range(0..25i64),
                    rng.gen_range(0..150i64)
                )
            };
            runs.push((sql, rng.gen_range(1..=4usize)));
        }
        let w = observe_workload(&mut db, &runs);
        if w.is_empty() {
            continue;
        }
        let cands = generate_candidates(&db, &w, &CandidateGenConfig::default());
        if cands.is_empty() {
            continue;
        }
        // Cache off so both paths genuinely plan every config; equality
        // must come from the costing itself, not shared memoization.
        let cache = aim_exec::whatif::global();
        cache.set_enabled(false);
        let batched = rank_candidates_with(&db, &w, &cands, &cm, 1);
        let sequential = rank_candidates_unbatched(&db, &w, &cands, &cm, 1);
        cache.set_enabled(true);
        assert_ranked_bit_identical(&sequential, &batched);
        // Same property under the parallel ranking path.
        let parallel = rank_candidates_with(&db, &w, &cands, &cm, 4);
        assert_ranked_bit_identical(&sequential, &parallel);
        assert!(!batched.is_empty() || case > 0, "degenerate sweep");
    }
}

/// On small instances whose optimum is obvious — one hot equality query,
/// unlimited budget — the LP selector must agree with greedy exactly; and
/// under random budgets it may only replace the greedy set when the actual
/// workload cost is strictly lower, else fall back bit-identically.
#[test]
fn lp_selection_agrees_with_greedy_on_optimal_instances() {
    let cols = ["a", "b", "c"];
    let mut rng = StdRng::seed_from_u64(0x1B07);
    let cm = CostModel::default();
    for _ in 0..5 {
        let domain = rng.gen_range(20..60i64);
        let mut db = Database::new();
        let defs = vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("b", ColumnType::Int),
            ColumnDef::new("c", ColumnType::Int),
        ];
        db.create_table(TableSchema::new("t", defs, &["id"]).expect("valid"))
            .expect("fresh");
        let mut io = IoStats::new();
        for i in 0..2500i64 {
            db.table_mut("t")
                .expect("exists")
                .insert(
                    vec![
                        Value::Int(i),
                        Value::Int(i % domain),
                        Value::Int((i * 7) % domain),
                        Value::Int((i * 13) % domain),
                    ],
                    &mut io,
                )
                .expect("unique");
        }
        db.analyze_all();

        let hot = cols[rng.gen_range(0..cols.len())];
        let v = rng.gen_range(0..domain);
        let w = observe_workload(
            &mut db,
            &[(format!("SELECT id FROM t WHERE {hot} = {v}"), 25)],
        );
        let cands = generate_candidates(&db, &w, &CandidateGenConfig::default());
        let ranked = rank_candidates(&db, &w, &cands, &cm);
        assert!(!ranked.is_empty(), "hot query produced no candidates");

        // Unlimited budget: the single useful index is provably optimal,
        // so LP refinement must return exactly the greedy selection.
        let greedy = knapsack_select(&ranked, u64::MAX, 0);
        let out = refine_selection(&db, &w, &ranked, greedy.clone(), u64::MAX, 0, &cm);
        assert_eq!(
            out.chosen
                .iter()
                .map(|r| r.candidate.name())
                .collect::<Vec<_>>(),
            greedy
                .iter()
                .map(|r| r.candidate.name())
                .collect::<Vec<_>>(),
        );
        assert!(
            out.chosen
                .iter()
                .any(|r| r.candidate.columns.first() == Some(&hot.to_string())),
            "optimal selection must lead with the hot column {hot}"
        );

        // Random constrained budget: matches-or-beats on actual cost.
        let total: u64 = ranked.iter().map(|r| r.size_bytes).sum();
        let budget = rng.gen_range(1..=total.max(2));
        let greedy = knapsack_select(&ranked, budget, 0);
        let out = refine_selection(&db, &w, &ranked, greedy.clone(), budget, 0, &cm);
        if out.used_lp {
            assert!(out.lp_cost < out.greedy_cost, "LP kept without improvement");
        } else {
            assert_ranked_bit_identical(&out.chosen, &greedy);
        }
        let used: u64 = out.chosen.iter().map(|r| r.size_bytes).sum();
        assert!(used <= budget, "budget violated: {used} > {budget}");
    }
}

// ------------------------------------------------------------------ jsonv

use aim_telemetry::jsonv::{self, Json};
use std::collections::BTreeMap;

/// Serializes a [`Json`] value the way the workspace's hand-rolled
/// emitters do: `\u` escapes for control characters, `\"`/`\\` for the
/// two specials, everything else verbatim UTF-8.
fn emit_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&format!("{n}")),
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json(&Json::Str(k.clone()), out);
                out.push(':');
                emit_json(val, out);
            }
            out.push('}');
        }
    }
}

/// A random string drawn from a palette that stresses every escape class:
/// the two JSON specials, whitespace escapes, raw control characters,
/// multi-byte UTF-8, and the solidus.
fn random_string(rng: &mut StdRng) -> String {
    const PALETTE: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\r", "\t", "\u{0001}", "\u{001f}", "/", "é", "λ",
        "漢", "🦀", "\\n", "\"quoted\"",
    ];
    let len = rng.gen_range(0..8usize);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

/// A random document, depth-bounded so the recursive parser stays well
/// inside stack limits while still nesting containers inside containers.
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0..2) == 1),
        // Exactly representable in binary, so Display output reparses to
        // the identical f64.
        2 => Json::Num(rng.gen_range(-64_000i64..64_000) as f64 / 8.0),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.gen_range(0..4usize);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(random_string(rng), random_json(rng, depth - 1));
            }
            Json::Obj(map)
        }
    }
}

#[test]
fn jsonv_roundtrips_random_documents() {
    let mut rng = StdRng::seed_from_u64(0x150_0AF);
    for _ in 0..500 {
        let doc = random_json(&mut rng, 4);
        let mut text = String::new();
        emit_json(&doc, &mut text);
        let parsed = jsonv::parse(&text)
            .unwrap_or_else(|e| panic!("emitted JSON failed to parse: {e} in {text}"));
        assert_eq!(parsed, doc, "round trip diverged for {text}");
    }
}

#[test]
fn jsonv_parses_deep_nesting() {
    // 200 levels of arrays and of single-key objects: far deeper than any
    // artifact we emit, still far from the thread's stack limit.
    let deep_arr = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    let mut v = jsonv::parse(&deep_arr).expect("deep array parses");
    for _ in 0..200 {
        v = v.as_arr().expect("array level")[0].clone();
    }
    assert_eq!(v, Json::Num(1.0));

    let deep_obj = format!("{}true{}", "{\"k\":".repeat(200), "}".repeat(200));
    let mut v = jsonv::parse(&deep_obj).expect("deep object parses");
    for _ in 0..200 {
        v = v.get("k").expect("object level").clone();
    }
    assert_eq!(v, Json::Bool(true));
}

#[test]
fn jsonv_rejects_malformed_documents() {
    let cases: &[(&str, &str)] = &[
        ("{} x", "trailing garbage after an object"),
        ("1 2", "two top-level values"),
        ("[1,2]]", "unbalanced close bracket"),
        ("\"\\x\"", "unknown escape"),
        ("\"\\u12\"", "short unicode escape"),
        ("\"\\u12zz\"", "non-hex unicode escape"),
        ("\"unterminated", "unterminated string"),
        ("{k:1}", "unquoted object key"),
        ("[1,]", "trailing comma in array"),
        ("{\"a\":1,}", "trailing comma in object"),
        ("-", "lone minus sign"),
        ("tru", "truncated literal"),
        ("", "empty document"),
        ("[1 2]", "missing array comma"),
        ("{\"a\" 1}", "missing object colon"),
    ];
    for (doc, why) in cases {
        let err = jsonv::parse(doc)
            .err()
            .unwrap_or_else(|| panic!("accepted malformed input ({why}): {doc:?}"));
        assert!(
            err.offset <= doc.len(),
            "error offset {} outside document ({why})",
            err.offset
        );
    }
}
