//! Disk-backend integration: the full advisor stack running on the paged
//! storage engine, and the durability contract across kills and reopens.

use aim_core::{AimConfig, BackendSpec};
use aim_exec::Engine;
use aim_monitor::{SelectionConfig, WorkloadMonitor};
use aim_sql::parse_statement;
use aim_storage::{
    BackendKind, ColumnDef, ColumnType, Database, IoStats, TableSchema, Value,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aim-backend-it-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn populate(db: &mut Database, rows: i64) {
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("customer", ColumnType::Int),
                ColumnDef::new("region", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    let mut io = IoStats::new();
    for i in 0..rows {
        db.table_mut("orders")
            .unwrap()
            .insert(
                vec![Value::Int(i), Value::Int(i % 150), Value::Int(i % 7)],
                &mut io,
            )
            .unwrap();
    }
    db.analyze_all();
}

fn observe(db: &mut Database, monitor: &mut WorkloadMonitor, sql: &str, n: usize) {
    let engine = Engine::new();
    let stmt = parse_statement(sql).unwrap();
    for _ in 0..n {
        let out = engine.execute(db, &stmt).unwrap();
        monitor.record(&stmt, &out);
    }
}

fn quick_session() -> aim_core::TuningSession {
    AimConfig::builder()
        .selection(SelectionConfig {
            min_executions: 1,
            min_benefit: 0.0,
            ..Default::default()
        })
        .session()
}

/// Acceptance criterion: a full tuning pass runs green on the disk
/// backend, the created indexes survive a process restart, and queries
/// actually get faster.
#[test]
fn full_tuning_pass_on_disk_backend_survives_reopen() {
    let dir = temp_dir("tuning");
    let spec = BackendSpec::disk(&dir);
    let sql = "SELECT id FROM orders WHERE customer = 42";
    let engine = Engine::new();
    let stmt = parse_statement(sql).unwrap();

    let (created, before_rows_read) = {
        let mut db = spec.provision().unwrap();
        assert_eq!(db.backend_kind(), BackendKind::Disk);
        populate(&mut db, 6_000);
        let before = engine.execute(&mut db, &stmt).unwrap();
        let mut monitor = WorkloadMonitor::new();
        observe(&mut db, &mut monitor, sql, 20);
        let outcome = quick_session().run(&mut db, &monitor).unwrap();
        assert!(!outcome.created.is_empty(), "rejected: {:?}", outcome.rejected);
        db.check_consistency().unwrap();
        (outcome.created.len(), before.io.rows_read)
    }; // drop checkpoints and closes the files

    let mut db = spec.provision().unwrap();
    assert_eq!(db.table("orders").unwrap().row_count(), 6_000);
    assert_eq!(db.all_indexes().len(), created, "indexes must survive reopen");
    db.check_consistency().unwrap();
    let after = engine.execute(&mut db, &stmt).unwrap();
    assert!(
        after.io.rows_read < before_rows_read / 10,
        "reopened index unused: {} rows read before, {} after",
        before_rows_read,
        after.io.rows_read
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: kill-and-reopen restores exactly the committed
/// state. The kill drops every buffered page without flushing, so reopen
/// runs pure WAL redo; page checksums are verified on every read along
/// the way.
#[test]
fn kill_and_reopen_recovers_committed_state() {
    let dir = temp_dir("kill");
    let spec = BackendSpec::disk(&dir);
    let expected: Vec<Vec<Value>> = {
        let mut db = spec.provision().unwrap();
        populate(&mut db, 1_500);
        let mut io = IoStats::new();
        // Post-populate mutations that only the WAL has seen.
        for i in 0..200 {
            db.table_mut("orders")
                .unwrap()
                .update(
                    &vec![Value::Int(i)],
                    vec![Value::Int(i), Value::Int(-1), Value::Int(-1)],
                    &mut io,
                )
                .unwrap();
        }
        for i in 1_400..1_500 {
            db.table_mut("orders")
                .unwrap()
                .delete(&vec![Value::Int(i)], &mut io)
                .unwrap();
        }
        let mut scan_io = IoStats::new();
        let committed: Vec<Vec<Value>> = db
            .table("orders")
            .unwrap()
            .scan_all(&mut scan_io)
            .cloned()
            .collect();
        db.simulate_crash(); // kill: no checkpoint, no flush
        committed
    };
    let db = spec.provision().unwrap();
    let mut scan_io = IoStats::new();
    let recovered: Vec<Vec<Value>> = db
        .table("orders")
        .unwrap()
        .scan_all(&mut scan_io)
        .cloned()
        .collect();
    assert_eq!(recovered, expected, "recovery must replay every committed batch");
    let counters = db.storage_counters();
    assert!(counters.recovered_batches > 0, "reopen must have replayed the WAL");
    assert_eq!(counters.checksum_failures, 0, "no page may fail its checksum");
    db.check_consistency().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// MyShadow contract on disk: validation clones of a disk-backed database
/// are in-memory — experimentation never touches the production files.
#[test]
fn clones_of_disk_database_are_memory_backed() {
    let dir = temp_dir("clone");
    let spec = BackendSpec::disk(&dir);
    let mut db = spec.provision().unwrap();
    populate(&mut db, 500);
    let wal_before = db.storage_counters().wal_bytes;

    let mut clone = db.try_clone().unwrap();
    assert_eq!(clone.backend_kind(), BackendKind::Memory);
    let mut io = IoStats::new();
    for i in 10_000..10_200 {
        clone
            .table_mut("orders")
            .unwrap()
            .insert(
                vec![Value::Int(i), Value::Int(0), Value::Int(0)],
                &mut io,
            )
            .unwrap();
    }
    clone
        .create_index(
            aim_storage::IndexDef::new("ix_probe", "orders", vec!["customer".into()]),
            &mut io,
        )
        .unwrap();
    assert_eq!(
        db.storage_counters().wal_bytes,
        wal_before,
        "clone writes must not reach the production WAL"
    );
    drop(db);

    // Production reopens without any trace of the clone's experiments.
    let db = spec.provision().unwrap();
    assert_eq!(db.table("orders").unwrap().row_count(), 500);
    assert!(db.all_indexes().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measured accounting: on disk, query costs come from real page walks,
/// and the buffer pool's counters move with the traffic.
#[test]
fn disk_queries_charge_real_pages_and_update_pool_counters() {
    let dir = temp_dir("pages");
    let spec = BackendSpec::disk(&dir);
    let mut db = spec.provision().unwrap();
    populate(&mut db, 3_000);
    let before = db.storage_counters();

    let engine = Engine::new();
    let stmt = parse_statement("SELECT id FROM orders WHERE id >= 100 AND id < 600").unwrap();
    let out = engine.execute(&mut db, &stmt).unwrap();
    assert_eq!(out.rows.len(), 500);
    assert!(out.io.pages_read > 0, "range scan must charge real pages");

    let after = db.storage_counters();
    // The working set fits in the pool after populate, so the walk is
    // served by hits — what must move is pool traffic, not disk reads.
    assert!(
        after.bp_hits + after.bp_misses > before.bp_hits + before.bp_misses,
        "buffer pool saw no traffic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
