//! The observability subsystem observed end to end: a deterministic tuning
//! pass against an in-memory sink, asserting the span tree shape, the
//! counter taxonomy, and the stability of the event sequence across
//! identical runs.

use aim_core::{AimConfig, TuningSession};
use aim_exec::Engine;
use aim_monitor::{SelectionConfig, WorkloadMonitor};
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};
use aim_telemetry::{EventKind, MemorySink, ProfileNode};
use std::sync::Mutex;

/// Telemetry state is process-global; tests in this binary take turns.
static LOCK: Mutex<()> = Mutex::new(());

fn db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("customer", ColumnType::Int),
                ColumnDef::new("region", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    let mut io = IoStats::new();
    for i in 0..6000i64 {
        db.table_mut("orders")
            .unwrap()
            .insert(
                vec![Value::Int(i), Value::Int(i % 300), Value::Int(i % 12)],
                &mut io,
            )
            .unwrap();
    }
    db.analyze_all();
    db
}

fn observe(db: &mut Database, monitor: &mut WorkloadMonitor, sql: &str, n: usize) {
    let engine = Engine::new();
    let stmt = parse_statement(sql).unwrap();
    for _ in 0..n {
        let out = engine.execute(db, &stmt).unwrap();
        monitor.record(&stmt, &out);
    }
}

fn aim() -> TuningSession {
    AimConfig::builder()
        .selection(SelectionConfig {
            min_executions: 1,
            min_benefit: 0.0,
            max_queries: 50,
            include_dml: true,
        })
        .session()
}

/// One full observed tuning pass; returns the profile tree and the event
/// stream captured by a fresh memory sink.
fn traced_tune() -> (ProfileNode, Vec<aim_telemetry::Event>) {
    let mut db = db();
    let mut monitor = WorkloadMonitor::new();
    observe(
        &mut db,
        &mut monitor,
        "SELECT id FROM orders WHERE customer = 42",
        20,
    );

    aim_telemetry::enable();
    aim_telemetry::reset();
    aim_telemetry::clear_sinks();
    let sink = MemorySink::new();
    let handle = sink.handle();
    aim_telemetry::add_sink(Box::new(sink));

    let outcome = aim().run(&mut db, &monitor).unwrap();
    assert!(
        !outcome.created.is_empty(),
        "fixture must create an index; rejected: {:?}",
        outcome.rejected
    );

    // The default journal capacity must hold a full pass's event stream:
    // a dropped event here would mean the artifact silently lies.
    assert_eq!(aim_telemetry::journal::dropped(), 0, "journal evicted events");
    assert_eq!(
        aim_telemetry::snapshot().counter("telemetry.journal_dropped"),
        Some(0),
        "journal_dropped counter must stay zero during a pass"
    );

    let profile = aim_telemetry::take_profile();
    let events = handle.events();
    aim_telemetry::clear_sinks();
    aim_telemetry::disable();
    (profile, events)
}

#[test]
fn span_tree_nests_all_driver_phases() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (profile, _) = traced_tune();

    let tune = profile.child("aim.tune").expect("root span recorded");
    assert_eq!(tune.count, 1);
    for phase in [
        "select_workload",
        "candidate_generation",
        "ranking",
        "knapsack",
        "validation",
        "materialize",
    ] {
        let node = tune
            .child(phase)
            .unwrap_or_else(|| panic!("phase '{phase}' missing from span tree"));
        assert!(node.count >= 1, "phase '{phase}' never entered");
    }
    // Deeper nesting: validation wraps the clone bed and replay rounds,
    // candidate generation wraps derivation and merging.
    assert!(tune.descendant("validation/clone_test_bed").is_some());
    assert!(tune.descendant("validation/validation_round").is_some());
    assert!(tune
        .descendant("candidate_generation/derive_partial_orders")
        .is_some());
    // What-if costing nests under ranking, not at top level.
    assert!(tune.descendant("ranking/exec.whatif").is_some());
    // Phases never account for more time than their parent.
    assert!(tune.children_total() <= tune.total);
}

#[test]
fn counters_reflect_the_pass() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, _) = traced_tune();
    // take_profile does not clear counters; read them post-pass.
    let snap = aim_telemetry::snapshot();
    let get = |name: &str| snap.counter(name).unwrap_or(0);
    assert!(get("exec.whatif_calls") > 0, "what-if counter stayed zero");
    assert!(get("exec.plans_evaluated") >= get("exec.whatif_calls"));
    assert!(get("aim.candidates_generated") > 0);
    assert!(get("aim.validation_rounds") > 0);
    assert!(get("aim.indexes_created") > 0);
}

#[test]
fn event_sequence_is_deterministic_and_well_formed() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, first) = traced_tune();
    let (_, second) = traced_tune();

    assert!(!first.is_empty(), "tuning pass emitted no events");
    // An identical pass produces the identical event stream (modulo the
    // process-global sequence numbers, and the TuningPass summary whose
    // detail embeds wall-clock milliseconds).
    let strip = |events: &[aim_telemetry::Event]| {
        events
            .iter()
            .map(|e| {
                let detail = if e.kind == EventKind::TuningPass {
                    String::new()
                } else {
                    e.detail.clone()
                };
                (e.kind, e.target.clone(), detail)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&first), strip(&second));
    // Sequence numbers are strictly increasing.
    assert!(first.windows(2).all(|w| w[0].seq < w[1].seq));
    // The accepted index is announced exactly once per created index, and
    // the pass closes with a TuningPass summary.
    let accepted: Vec<_> = first
        .iter()
        .filter(|e| e.kind == EventKind::IndexAccepted)
        .collect();
    assert_eq!(accepted.len(), 1);
    assert!(accepted[0].target.starts_with("aim_"));
    assert_eq!(first.last().unwrap().kind, EventKind::TuningPass);
}

/// The storage engine's buffer-pool and WAL counters flow into the
/// telemetry registry, appear in the `/metrics` (Prometheus) rendering
/// and in the profile report's counter table.
#[test]
fn storage_counters_surface_in_metrics_and_profile_report() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    aim_telemetry::reset();
    aim_telemetry::enable();

    let dir = std::env::temp_dir().join(format!(
        "aim-telemetry-storage-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = aim_core::BackendSpec::disk(&dir).provision().unwrap();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut io = IoStats::new();
        for i in 0..2_000 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 5)], &mut io)
                .unwrap();
        }
        db.checkpoint().unwrap();
        db.simulate_crash(); // skip Drop-time flushing; counters are pushed
    }
    let _ = std::fs::remove_dir_all(&dir);

    let snap = aim_telemetry::snapshot();
    let get = |name: &str| snap.counter(name).unwrap_or(0);
    assert!(get("storage.bp.hit") > 0, "buffer-pool hits not exported");
    assert!(get("storage.wal.bytes") > 0, "WAL byte counter not exported");
    assert!(get("storage.wal.fsyncs") > 0, "WAL fsync counter not exported");
    assert!(
        snap.counter("storage.bp.miss").is_some(),
        "miss counter must exist even when zero"
    );

    let prometheus = aim_telemetry::render_prometheus(&snap);
    for name in ["storage_bp_hit", "storage_wal_bytes", "storage_wal_fsyncs"] {
        assert!(
            prometheus.contains(name),
            "/metrics rendering lacks {name}:\n{prometheus}"
        );
    }
    let report = aim_telemetry::render_counters(&snap);
    assert!(
        report.contains("storage.wal.bytes"),
        "profile counter table lacks storage.wal.bytes:\n{report}"
    );
    aim_telemetry::disable();
}
