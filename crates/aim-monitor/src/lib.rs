//! Workload monitoring and representative workload selection (§III-C).
//!
//! The monitor aggregates per-execution statistics under each query's
//! normalized fingerprint — executions, CPU, rows read/sent, indexes used —
//! standing in for the paper's continuous statistics-export pipeline
//! (§VII-A). From the aggregate it computes each query's *discarded data
//! ratio* and the optimistic expected benefit
//!
//! ```text
//! B(q, X, Δt) = (1 − ddr_avg(q, X, Δt)) · cpu_avg(q, X, Δt)      (Eq. 5)
//! ```
//!
//! and selects the representative workload: the queries whose expected
//! benefit clears a configurable threshold, ordered most-beneficial first.

pub mod selection;
pub mod stats;

pub use selection::{select_workload, SelectionConfig, WorkloadQuery};
pub use stats::{IndexUse, QueryStats, WorkloadMonitor};
