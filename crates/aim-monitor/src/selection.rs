//! Representative workload selection (§III-C of the paper).
//!
//! Three attributes drive selection per normalized query: execution
//! frequency (weeds out ad-hoc one-offs), average CPU consumption, and the
//! discarded-data ratio. The latter two combine into the optimistic
//! expected benefit of Eq. 5, thresholded to pick the queries worth tuning.

use crate::stats::{QueryStats, WorkloadMonitor};

/// Thresholds controlling representative workload selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConfig {
    /// Minimum executions in the window; filters spurious ad-hoc queries.
    pub min_executions: u64,
    /// Minimum expected benefit `B` (Eq. 5) in cost units per execution.
    /// The paper's example threshold is 1/20 of a CPU core over the window.
    pub min_benefit: f64,
    /// Cap on the number of queries selected (the paper notes the top few
    /// expensive queries account for most CPU).
    pub max_queries: usize,
    /// Include DML statements in the returned workload (they contribute
    /// index-maintenance cost and can benefit from indexes on their WHERE
    /// clauses).
    pub include_dml: bool,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            min_executions: 2,
            min_benefit: 1.0,
            max_queries: 50,
            include_dml: true,
        }
    }
}

/// A query selected into the representative workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub stats: QueryStats,
    /// Expected benefit `B(q, X, Δt)` at selection time.
    pub benefit: f64,
    /// Workload weight `w_q` (total CPU over the window).
    pub weight: f64,
}

/// Selects the representative workload: SELECT queries ordered by
/// descending expected benefit, thresholded per `config`, plus (optionally)
/// all recurring DML so maintenance costs are visible to ranking.
pub fn select_workload(monitor: &WorkloadMonitor, config: &SelectionConfig) -> Vec<WorkloadQuery> {
    let mut chosen: Vec<WorkloadQuery> = Vec::new();
    let mut dml: Vec<WorkloadQuery> = Vec::new();
    for q in monitor.queries() {
        if q.executions < config.min_executions {
            continue;
        }
        if q.is_dml() {
            if config.include_dml {
                dml.push(WorkloadQuery {
                    stats: q.clone(),
                    benefit: 0.0,
                    weight: q.weight(),
                });
            }
            continue;
        }
        let benefit = q.expected_benefit();
        if benefit < config.min_benefit {
            continue;
        }
        chosen.push(WorkloadQuery {
            stats: q.clone(),
            benefit,
            weight: q.weight(),
        });
    }
    chosen.sort_by(|a, b| b.benefit.total_cmp(&a.benefit));
    chosen.truncate(config.max_queries);
    chosen.extend(dml);
    aim_telemetry::metrics::gauge_set("monitor.window_queries", monitor.queries().count() as i64);
    aim_telemetry::metrics::gauge_set("monitor.selected_queries", chosen.len() as i64);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;
    use aim_sql::parse_statement;
    use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

    fn setup() -> (Database, WorkloadMonitor) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                    ColumnDef::new("b", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut io = IoStats::new();
        for i in 0..2000 {
            db.table_mut("t")
                .unwrap()
                .insert(
                    vec![Value::Int(i), Value::Int(i % 10), Value::Int(i % 100)],
                    &mut io,
                )
                .unwrap();
        }
        db.analyze_all();
        (db, WorkloadMonitor::new())
    }

    fn record_n(m: &mut WorkloadMonitor, db: &mut Database, sql: &str, n: usize) {
        let engine = Engine::new();
        let stmt = parse_statement(sql).unwrap();
        for _ in 0..n {
            let out = engine.execute(db, &stmt).unwrap();
            m.record(&stmt, &out);
        }
    }

    #[test]
    fn selects_inefficient_query_first() {
        let (mut db, mut m) = setup();
        // Inefficient: scans 2000 rows, returns ~20.
        record_n(&mut m, &mut db, "SELECT id FROM t WHERE b = 5", 10);
        // Efficient: PK point lookup.
        record_n(&mut m, &mut db, "SELECT id FROM t WHERE id = 5", 10);
        let selected = select_workload(&m, &SelectionConfig::default());
        assert!(!selected.is_empty());
        assert!(selected[0].stats.normalized_text.contains("b = ?"));
        // The PK lookup should not be selected (benefit below threshold).
        assert!(selected
            .iter()
            .all(|q| !q.stats.normalized_text.contains("id = ?")));
    }

    #[test]
    fn frequency_threshold_weeds_out_ad_hoc() {
        let (mut db, mut m) = setup();
        record_n(&mut m, &mut db, "SELECT id FROM t WHERE b = 5", 1);
        let selected = select_workload(
            &m,
            &SelectionConfig {
                min_executions: 2,
                ..Default::default()
            },
        );
        assert!(selected.is_empty());
    }

    #[test]
    fn max_queries_caps_selection() {
        let (mut db, mut m) = setup();
        for col in ["a", "b"] {
            for v in 0..3 {
                record_n(
                    &mut m,
                    &mut db,
                    &format!("SELECT id FROM t WHERE {col} = {v} AND b > {v}"),
                    3,
                );
            }
        }
        let selected = select_workload(
            &m,
            &SelectionConfig {
                max_queries: 1,
                min_benefit: 0.0,
                include_dml: false,
                ..Default::default()
            },
        );
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn ordering_is_by_descending_benefit() {
        let (mut db, mut m) = setup();
        record_n(&mut m, &mut db, "SELECT id FROM t WHERE b = 5", 20);
        record_n(&mut m, &mut db, "SELECT id FROM t WHERE a = 5 AND b = 5", 2);
        let selected = select_workload(
            &m,
            &SelectionConfig {
                min_benefit: 0.0,
                ..Default::default()
            },
        );
        assert!(selected.len() >= 2);
        for w in selected.windows(2) {
            if !w[0].stats.is_dml() && !w[1].stats.is_dml() {
                assert!(w[0].benefit >= w[1].benefit);
            }
        }
    }

    #[test]
    fn dml_included_with_zero_benefit() {
        let (mut db, mut m) = setup();
        record_n(&mut m, &mut db, "UPDATE t SET b = 1 WHERE id = 3", 5);
        let selected = select_workload(&m, &SelectionConfig::default());
        assert_eq!(selected.len(), 1);
        assert!(selected[0].stats.is_dml());
        assert_eq!(selected[0].benefit, 0.0);

        let without = select_workload(
            &m,
            &SelectionConfig {
                include_dml: false,
                ..Default::default()
            },
        );
        assert!(without.is_empty());
    }
}
