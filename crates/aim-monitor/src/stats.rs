//! Per-normalized-query execution statistics.

use aim_exec::{ExecOutcome, IndexChoice};
use aim_sql::ast::Statement;
use aim_sql::normalize::{normalize_statement, QueryFingerprint};
use std::collections::BTreeMap;

/// One index observed in use by a query's most recent execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexUse {
    /// Table the index belongs to.
    pub table: String,
    /// Index label (`PRIMARY`, a secondary index name, or a hypothetical
    /// marker).
    pub index: String,
    /// Number of leading key columns matched by equality.
    pub eq_prefix_len: usize,
    /// Whether the scan was covering (no base-table lookups).
    pub covering: bool,
}

/// Aggregated statistics for one normalized query over the current window.
#[derive(Debug, Clone)]
pub struct QueryStats {
    pub fingerprint: QueryFingerprint,
    /// Normalized SQL text (`?` placeholders).
    pub normalized_text: String,
    /// Normalized statement, input to structural candidate generation.
    pub normalized: Statement,
    /// A concrete exemplar execution of this query (with literals), usable
    /// for replay during clone validation.
    pub exemplar: Statement,
    pub executions: u64,
    /// Total measured cost (cost units ≈ µs of simulated CPU, including
    /// IO-wait, matching the paper's `cpu_avg` convention).
    pub total_cpu: f64,
    pub total_rows_read: u64,
    pub total_rows_sent: u64,
    /// Sum over executions of per-execution `rows_sent / rows_read`.
    sum_sent_read_ratio: f64,
    /// Indexes used by the most recently observed plan.
    pub indexes_used: Vec<IndexUse>,
    /// Average seeks per execution (drives the covering-index decision).
    pub total_seeks: u64,
}

impl QueryStats {
    /// Builds synthetic statistics for a query that was never observed —
    /// used when driving AIM as a pure *advisor* over an analytical
    /// workload (the Figure 4/5 benchmark setting), where only the query
    /// text and a weight are known.
    pub fn synthetic(stmt: &Statement, executions: u64, total_cpu: f64) -> Self {
        let norm = normalize_statement(stmt);
        Self {
            fingerprint: norm.fingerprint,
            normalized_text: norm.text,
            normalized: norm.statement,
            exemplar: stmt.clone(),
            executions,
            total_cpu,
            total_rows_read: 0,
            total_rows_sent: 0,
            sum_sent_read_ratio: 0.0,
            indexes_used: Vec::new(),
            total_seeks: 0,
        }
    }

    /// Average CPU cost per execution (cost units).
    pub fn cpu_avg(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.total_cpu / self.executions as f64
        }
    }

    /// Discarded-data ratio as defined in §III-A2: the ratio of data sent
    /// to data read, averaged across executions. A value near 0 means
    /// almost everything read was discarded (inefficient); near 1 means
    /// reads were fully useful.
    pub fn ddr_avg(&self) -> f64 {
        if self.executions == 0 {
            1.0
        } else {
            self.sum_sent_read_ratio / self.executions as f64
        }
    }

    /// Optimistic expected benefit from optimizing this query (Eq. 5):
    /// `(1 − ddr_avg) · cpu_avg`.
    pub fn expected_benefit(&self) -> f64 {
        (1.0 - self.ddr_avg()).max(0.0) * self.cpu_avg()
    }

    /// Average seeks per execution.
    pub fn seeks_avg(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.total_seeks as f64 / self.executions as f64
        }
    }

    /// Workload weight `w_q`: total CPU consumed over the window, so that
    /// expensive-and-frequent queries dominate the objective (Eq. 1).
    pub fn weight(&self) -> f64 {
        self.total_cpu
    }

    /// True if the statement mutates data (DML).
    pub fn is_dml(&self) -> bool {
        self.normalized.is_dml()
    }
}

/// Aggregates execution statistics per normalized query.
#[derive(Debug, Clone, Default)]
pub struct WorkloadMonitor {
    queries: BTreeMap<QueryFingerprint, QueryStats>,
}

impl WorkloadMonitor {
    /// New, empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `stmt` with its outcome.
    pub fn record(&mut self, stmt: &Statement, outcome: &ExecOutcome) {
        aim_telemetry::metrics::MONITOR_RECORDS.incr();
        let norm = normalize_statement(stmt);
        let entry = self
            .queries
            .entry(norm.fingerprint)
            .or_insert_with(|| QueryStats {
                fingerprint: norm.fingerprint,
                normalized_text: norm.text.clone(),
                normalized: norm.statement.clone(),
                exemplar: stmt.clone(),
                executions: 0,
                total_cpu: 0.0,
                total_rows_read: 0,
                total_rows_sent: 0,
                sum_sent_read_ratio: 0.0,
                indexes_used: Vec::new(),
                total_seeks: 0,
            });
        entry.executions += 1;
        entry.total_cpu += outcome.cost;
        entry.total_rows_read += outcome.io.rows_read;
        entry.total_rows_sent += outcome.rows_sent();
        entry.total_seeks += outcome.io.seeks;
        let read = outcome.io.rows_read;
        let ratio = if read == 0 {
            1.0
        } else {
            (outcome.rows_sent() as f64 / read as f64).min(1.0)
        };
        entry.sum_sent_read_ratio += ratio;
        // Keep a fresh exemplar and the most recent plan's index usage.
        entry.exemplar = stmt.clone();
        entry.indexes_used = index_uses(outcome);
    }

    /// Clears the window (start of a new observation interval).
    pub fn reset(&mut self) {
        self.queries.clear();
    }

    /// All tracked queries.
    pub fn queries(&self) -> impl Iterator<Item = &QueryStats> {
        self.queries.values()
    }

    /// Number of distinct normalized queries tracked.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no queries recorded.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Stats for one fingerprint.
    pub fn get(&self, fp: QueryFingerprint) -> Option<&QueryStats> {
        self.queries.get(&fp)
    }

    /// Total CPU cost recorded across all queries in the window.
    pub fn total_cpu(&self) -> f64 {
        self.queries.values().map(|q| q.total_cpu).sum()
    }

    /// Merges another monitor's window into this one — the ingestion-stream
    /// fan-in for fleet tenants whose traffic arrives on several collectors.
    /// Counters and cost sums add; the exemplar and plan-usage metadata of
    /// an already-tracked query are taken from `other` (the fresher
    /// stream), matching [`WorkloadMonitor::record`]'s freshest-wins rule.
    pub fn absorb(&mut self, other: &WorkloadMonitor) {
        for (fp, stats) in &other.queries {
            match self.queries.get_mut(fp) {
                Some(mine) => {
                    mine.executions += stats.executions;
                    mine.total_cpu += stats.total_cpu;
                    mine.total_rows_read += stats.total_rows_read;
                    mine.total_rows_sent += stats.total_rows_sent;
                    mine.sum_sent_read_ratio += stats.sum_sent_read_ratio;
                    mine.total_seeks += stats.total_seeks;
                    mine.exemplar = stats.exemplar.clone();
                    mine.indexes_used = stats.indexes_used.clone();
                }
                None => {
                    self.queries.insert(*fp, stats.clone());
                }
            }
        }
    }
}

/// Extracts index-usage metadata from an executed plan.
fn index_uses(outcome: &ExecOutcome) -> Vec<IndexUse> {
    let mut uses = Vec::new();
    for step in &outcome.plan.steps {
        let scans: Vec<&aim_exec::IndexScan> = match &step.path {
            aim_exec::AccessPath::FullScan => Vec::new(),
            aim_exec::AccessPath::IndexScan(s) => vec![s],
            aim_exec::AccessPath::OrUnion(branches) => branches.iter().collect(),
        };
        for s in scans {
            let index = match &s.index {
                IndexChoice::Primary => "PRIMARY".to_string(),
                IndexChoice::Secondary(n) => n.clone(),
                IndexChoice::Hypothetical(i) => format!("<hypo#{i}>"),
            };
            uses.push(IndexUse {
                table: step.table.clone(),
                index,
                eq_prefix_len: s.eq.len(),
                covering: s.covering,
            });
        }
    }
    uses
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;
    use aim_sql::parse_statement;
    use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut io = IoStats::new();
        for i in 0..1000 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 10)], &mut io)
                .unwrap();
        }
        db.analyze_all();
        db
    }

    fn record(monitor: &mut WorkloadMonitor, db: &mut Database, sql: &str) {
        let engine = Engine::new();
        let stmt = parse_statement(sql).unwrap();
        let out = engine.execute(db, &stmt).unwrap();
        monitor.record(&stmt, &out);
    }

    #[test]
    fn same_shape_aggregates_under_one_fingerprint() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 1");
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 2");
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 3");
        assert_eq!(m.len(), 1);
        let q = m.queries().next().unwrap();
        assert_eq!(q.executions, 3);
        assert_eq!(q.normalized_text, "SELECT id FROM t WHERE a = ?");
    }

    #[test]
    fn ddr_low_for_selective_scan_queries() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        // 1000 rows read, ~100 sent: ddr ≈ 0.1 (mostly discarded).
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 1");
        let q = m.queries().next().unwrap();
        assert!(q.ddr_avg() < 0.2, "ddr = {}", q.ddr_avg());
        assert!(q.expected_benefit() > 0.0);
    }

    #[test]
    fn ddr_high_for_full_result_queries() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id, a FROM t");
        let q = m.queries().next().unwrap();
        assert!(q.ddr_avg() > 0.9, "ddr = {}", q.ddr_avg());
        // Efficient query: little expected benefit relative to cost.
        assert!(q.expected_benefit() < 0.2 * q.cpu_avg());
    }

    #[test]
    fn point_lookup_has_tiny_benefit() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id FROM t WHERE id = 5");
        let q = m.queries().next().unwrap();
        assert!(q.ddr_avg() > 0.9);
    }

    #[test]
    fn exemplar_keeps_literals() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 7");
        let q = m.queries().next().unwrap();
        assert!(q.exemplar.to_string().contains("= 7"));
        assert!(q.normalized_text.contains("= ?"));
    }

    #[test]
    fn dml_recorded_and_flagged() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "UPDATE t SET a = 5 WHERE id = 3");
        let q = m.queries().next().unwrap();
        assert!(q.is_dml());
        assert!(q.total_cpu > 0.0);
    }

    #[test]
    fn index_usage_tracked() {
        let mut db = db();
        let mut io = IoStats::new();
        db.create_index(
            aim_storage::IndexDef::new("ix_a", "t", vec!["a".into()]),
            &mut io,
        )
        .unwrap();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id, a FROM t WHERE a = 1");
        let q = m.queries().next().unwrap();
        assert_eq!(q.indexes_used.len(), 1);
        assert_eq!(q.indexes_used[0].index, "ix_a");
        assert_eq!(q.indexes_used[0].table, "t");
        assert_eq!(q.indexes_used[0].eq_prefix_len, 1);
    }

    #[test]
    fn reset_clears_window() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 1");
        assert!(!m.is_empty());
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.total_cpu(), 0.0);
    }

    #[test]
    fn absorb_merges_streams_and_keeps_fresh_exemplar() {
        let mut db = db();
        let mut a = WorkloadMonitor::new();
        let mut b = WorkloadMonitor::new();
        record(&mut a, &mut db, "SELECT id FROM t WHERE a = 1");
        record(&mut b, &mut db, "SELECT id FROM t WHERE a = 9");
        record(&mut b, &mut db, "SELECT id, a FROM t");
        let a_cpu = a.total_cpu();
        let b_cpu = b.total_cpu();

        a.absorb(&b);
        assert_eq!(a.len(), 2, "shared fingerprint merged, new one added");
        assert!((a.total_cpu() - (a_cpu + b_cpu)).abs() < 1e-9);
        let merged = a
            .queries()
            .find(|q| q.normalized_text.contains("WHERE"))
            .unwrap();
        assert_eq!(merged.executions, 2);
        // Freshest-wins: the exemplar comes from the absorbed stream.
        assert!(merged.exemplar.to_string().contains("= 9"));
        // ddr stays a valid per-execution average after the merge.
        assert!((0.0..=1.0).contains(&merged.ddr_avg()));
    }

    #[test]
    fn weight_is_total_cpu() {
        let mut db = db();
        let mut m = WorkloadMonitor::new();
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 1");
        record(&mut m, &mut db, "SELECT id FROM t WHERE a = 2");
        let q = m.queries().next().unwrap();
        assert!((q.weight() - q.total_cpu).abs() < 1e-12);
        assert!(q.weight() > q.cpu_avg());
    }
}
