//! Abstract syntax tree for the supported SQL subset.
//!
//! The tree is deliberately flat and explicit: AIM's candidate generation
//! (crate `aim-core`) walks it to extract column-usage metadata (which
//! operation each column participates in, with which operator) and the join
//! graph — the "structural metadata" of Table I in the paper.

use std::fmt;

/// A possibly table-qualified column reference (`t.col` or `col`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{}.{}", t, self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Literal values, including the `?` parameter placeholder produced both by
/// user input and by query normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `?` placeholder.
    Param,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
            Literal::Param => write!(f, "?"),
        }
    }
}

/// Binary operators appearing in scalar expressions and predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    /// MySQL `<=>`: equality that treats two NULLs as equal.
    NullSafeEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// True for comparison (predicate) operators, false for arithmetic.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::NullSafeEq
                | BinOp::NotEq
                | BinOp::Lt
                | BinOp::LtEq
                | BinOp::Gt
                | BinOp::GtEq
        )
    }

    /// True for operators that, per §IV-B2 of the paper, make the predicate
    /// an *index prefix predicate* when the other side is a constant: the
    /// matching rows share a constant prefix in an index on the column.
    pub fn is_prefix_compatible(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NullSafeEq)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NullSafeEq => "<=>",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Aggregate function names supported in projections and HAVING.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Scalar expressions and predicates.
///
/// AND/OR are n-ary so that predicate *chains* keep their grouping — the
/// factorization step of candidate generation (Algorithm 5) needs the
/// AND-OR chain structure, not a binary tree of unknown associativity.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    /// N-ary conjunction; always has >= 2 children after parsing.
    And(Vec<Expr>),
    /// N-ary disjunction; always has >= 2 children after parsing.
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Aggregate {
        func: AggFunc,
        /// `None` encodes `COUNT(*)`.
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// Unary numeric negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Builds an n-ary AND, flattening nested ANDs and eliding singletons.
    pub fn and(parts: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Expr::And(children) => flat.extend(children),
                other => flat.push(other),
            }
        }
        match flat.len() {
            1 => flat.pop().expect("len checked"),
            _ => Expr::And(flat),
        }
    }

    /// Builds an n-ary OR, flattening nested ORs and eliding singletons.
    pub fn or(parts: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Expr::Or(children) => flat.extend(children),
                other => flat.push(other),
            }
        }
        match flat.len() {
            1 => flat.pop().expect("len checked"),
            _ => Expr::Or(flat),
        }
    }

    /// Convenience constructor for `column op literal`.
    pub fn cmp(col: ColumnRef, op: BinOp, lit: Literal) -> Expr {
        Expr::Binary {
            left: Box::new(Expr::Column(col)),
            op,
            right: Box::new(Expr::Literal(lit)),
        }
    }

    /// Collects every column referenced anywhere inside this expression.
    pub fn referenced_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) => {}
            Expr::And(children) | Expr::Or(children) => {
                for c in children {
                    c.referenced_columns(out);
                }
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// True if the expression contains any aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::And(children) | Expr::Or(children) => {
                children.iter().any(Expr::contains_aggregate)
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::And(children) => write_joined(f, children, " AND ", true),
            Expr::Or(children) => write_joined(f, children, " OR ", true),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Binary { left, op, right } => write!(f, "{left} {op} {right}"),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                write_joined(f, list, ", ", false)?;
                write!(f, ")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => match arg {
                Some(a) => write!(
                    f,
                    "{func}({}{a})",
                    if *distinct { "DISTINCT " } else { "" }
                ),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

fn write_joined(
    f: &mut fmt::Formatter<'_>,
    items: &[Expr],
    sep: &str,
    parens: bool,
) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        // Parenthesise nested boolean connectives so precedence survives a
        // print/parse round trip.
        let needs_parens = parens && matches!(item, Expr::And(_) | Expr::Or(_));
        if needs_parens {
            write!(f, "({item})")?;
        } else {
            write!(f, "{item}")?;
        }
    }
    Ok(())
}

/// One item of a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

/// A table reference in the FROM list, with optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            alias: None,
        }
    }

    /// The name this table instance is referred to by within the query:
    /// its alias if present, its base name otherwise.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {}", self.name, a),
            None => write!(f, "{}", self.name),
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.expr, if self.desc { "DESC" } else { "ASC" })
    }
}

/// A SELECT statement.
///
/// Explicit `JOIN ... ON` syntax is normalised at parse time: joined tables
/// land in `from` and ON predicates are conjoined into `where_clause`. This
/// gives candidate generation a single predicate tree to factorize.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<Expr>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// An INSERT statement (`INSERT INTO t (c1, c2) VALUES (...), (...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Expr>>,
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, val)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} = {val}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// Column data types for DDL; mirrors `aim-storage`'s type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    BigInt,
    Double,
    Varchar,
    Boolean,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::BigInt => "BIGINT",
            SqlType::Double => "DOUBLE",
            SqlType::Varchar => "VARCHAR",
            SqlType::Boolean => "BOOLEAN",
        };
        write!(f, "{s}")
    }
}

/// A CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, SqlType)>,
    /// Clustered primary key columns; must be non-empty.
    pub primary_key: Vec<String>,
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, (col, ty)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} {ty}")?;
        }
        write!(f, ", PRIMARY KEY ({}))", self.primary_key.join(", "))
    }
}

/// A CREATE INDEX statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE {}INDEX {} ON {} ({})",
            if self.unique { "UNIQUE " } else { "" },
            self.name,
            self.table,
            self.columns.join(", ")
        )
    }
}

/// Top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Select),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    DropIndex { name: String, table: String },
}

impl Statement {
    /// True for statements that modify data (the paper's DML, which incurs
    /// index-maintenance cost `cost_u`).
    pub fn is_dml(&self) -> bool {
        matches!(
            self,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        )
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
            Statement::CreateTable(s) => write!(f, "{s}"),
            Statement::CreateIndex(s) => write!(f, "{s}"),
            Statement::DropIndex { name, table } => write!(f, "DROP INDEX {name} ON {table}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_nested_conjunctions() {
        let a = Expr::cmp(ColumnRef::bare("a"), BinOp::Eq, Literal::Int(1));
        let b = Expr::cmp(ColumnRef::bare("b"), BinOp::Eq, Literal::Int(2));
        let c = Expr::cmp(ColumnRef::bare("c"), BinOp::Eq, Literal::Int(3));
        let nested = Expr::and(vec![Expr::and(vec![a.clone(), b.clone()]), c.clone()]);
        assert_eq!(nested, Expr::And(vec![a, b, c]));
    }

    #[test]
    fn and_of_one_is_identity() {
        let a = Expr::cmp(ColumnRef::bare("a"), BinOp::Eq, Literal::Int(1));
        assert_eq!(Expr::and(vec![a.clone()]), a);
    }

    #[test]
    fn referenced_columns_walks_all_positions() {
        let e = Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("x"))),
            low: Box::new(Expr::Column(ColumnRef::bare("lo"))),
            high: Box::new(Expr::Column(ColumnRef::bare("hi"))),
            negated: false,
        };
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(
            cols,
            vec![
                ColumnRef::bare("x"),
                ColumnRef::bare("lo"),
                ColumnRef::bare("hi")
            ]
        );
    }

    #[test]
    fn display_escapes_string_literals() {
        let l = Literal::Str("it's".into());
        assert_eq!(l.to_string(), "'it''s'");
    }

    #[test]
    fn prefix_compatibility_matches_paper() {
        assert!(BinOp::Eq.is_prefix_compatible());
        assert!(BinOp::NullSafeEq.is_prefix_compatible());
        assert!(!BinOp::Gt.is_prefix_compatible());
        assert!(!BinOp::LtEq.is_prefix_compatible());
        assert!(!BinOp::NotEq.is_prefix_compatible());
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding(), "o");
        assert_eq!(TableRef::new("orders").binding(), "orders");
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::Column(ColumnRef::bare("x")))),
            distinct: false,
        };
        let wrapped = Expr::Binary {
            left: Box::new(agg),
            op: BinOp::Gt,
            right: Box::new(Expr::Literal(Literal::Int(5))),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::Column(ColumnRef::bare("x")).contains_aggregate());
    }
}
