//! Parse-error type shared by the lexer and parser.

use std::fmt;

/// Error produced when lexing or parsing a SQL string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a new error anchored at `offset` bytes into the input.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 7);
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected token");
    }
}
