//! Hand-written SQL lexer.
//!
//! Produces a flat token stream; keywords are recognised case-insensitively
//! and carried as [`Token::Keyword`] with an upper-cased spelling so the
//! parser can match on them directly.

use crate::error::ParseError;

/// A single lexical token together with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub offset: usize,
}

/// SQL token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Recognised SQL keyword, upper-cased (`SELECT`, `FROM`, ...).
    Keyword(String),
    /// Identifier (table, column, alias, function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal with quotes removed and escapes resolved.
    Str(String),
    /// `?` parameter placeholder.
    Param,
    Comma,
    Dot,
    LParen,
    RParen,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `<=>` MySQL null-safe equality.
    NullSafeEq,
    /// End of input sentinel.
    Eof,
}

/// Keywords recognised by the lexer. Anything else becomes an identifier.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "OFFSET", "AS", "AND",
    "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "ASC", "DESC", "JOIN",
    "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY", "DROP", "DISTINCT",
    "COUNT", "SUM", "AVG", "MIN", "MAX",
];

/// Lexes `input` into a token vector terminated by [`Token::Eof`].
pub fn lex(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => push(&mut tokens, Token::Comma, &mut i),
            b'.' => push(&mut tokens, Token::Dot, &mut i),
            b'(' => push(&mut tokens, Token::LParen, &mut i),
            b')' => push(&mut tokens, Token::RParen, &mut i),
            b';' => push(&mut tokens, Token::Semicolon, &mut i),
            b'*' => push(&mut tokens, Token::Star, &mut i),
            b'+' => push(&mut tokens, Token::Plus, &mut i),
            b'-' => push(&mut tokens, Token::Minus, &mut i),
            b'/' => push(&mut tokens, Token::Slash, &mut i),
            b'%' => push(&mut tokens, Token::Percent, &mut i),
            b'?' => push(&mut tokens, Token::Param, &mut i),
            b'=' => push(&mut tokens, Token::Eq, &mut i),
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected character '!'", i));
                }
            }
            b'<' => {
                if input[i..].starts_with("<=>") {
                    tokens.push(SpannedToken {
                        token: Token::NullSafeEq,
                        offset: i,
                    });
                    i += 3;
                } else if input[i..].starts_with("<=") {
                    tokens.push(SpannedToken {
                        token: Token::LtEq,
                        offset: i,
                    });
                    i += 2;
                } else if input[i..].starts_with("<>") {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    push(&mut tokens, Token::Lt, &mut i);
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::GtEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    push(&mut tokens, Token::Gt, &mut i);
                }
            }
            b'\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(SpannedToken {
                    token: Token::Str(s),
                    offset: i,
                });
                i = next;
            }
            b'`' | b'"' => {
                let (s, next) = lex_quoted_ident(input, i, c as char)?;
                tokens.push(SpannedToken {
                    token: Token::Ident(s),
                    offset: i,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(SpannedToken {
                    token: tok,
                    offset: i,
                });
                i = next;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i] == b'$' || bytes[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(SpannedToken {
                        token: Token::Keyword(upper),
                        offset: start,
                    });
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Ident(word.to_string()),
                        offset: start,
                    });
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    i,
                ));
            }
        }
    }

    tokens.push(SpannedToken {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn push(tokens: &mut Vec<SpannedToken>, token: Token, i: &mut usize) {
    tokens.push(SpannedToken { token, offset: *i });
    *i += 1;
}

/// Lexes a single-quoted string starting at `start` (which must be a quote).
/// Supports `''` escaping of embedded quotes.
fn lex_string(input: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(ParseError::new("unterminated string literal", start))
}

fn lex_quoted_ident(input: &str, start: usize, quote: char) -> Result<(String, usize), ParseError> {
    let rest = &input[start + 1..];
    match rest.find(quote) {
        Some(end) => Ok((rest[..end].to_string(), start + 1 + end + 1)),
        None => Err(ParseError::new("unterminated quoted identifier", start)),
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|_| ParseError::new("invalid float literal", start))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|_| ParseError::new("integer literal out of range", start))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        lex(sql).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let toks = kinds("SELECT a FROM t WHERE x = 1");
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("a".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("t".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("x".into()),
                Token::Eq,
                Token::Int(1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = kinds("select A from B");
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[2], Token::Keyword("FROM".into()));
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("<= >= <> != < > = <=>");
        assert_eq!(
            toks,
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::NullSafeEq,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        let toks = kinds("'it''s'");
        assert_eq!(toks[0], Token::Str("it's".into()));
    }

    #[test]
    fn lexes_numbers() {
        let toks = kinds("42 3.5 1e3 2.5e-2");
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Float(3.5));
        assert_eq!(toks[2], Token::Float(1e3));
        assert_eq!(toks[3], Token::Float(2.5e-2));
    }

    #[test]
    fn lexes_quoted_identifiers() {
        let toks = kinds("`order` \"select\"");
        assert_eq!(toks[0], Token::Ident("order".into()));
        assert_eq!(toks[1], Token::Ident("select".into()));
    }

    #[test]
    fn skips_line_comments() {
        let toks = kinds("SELECT -- comment here\n 1");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("SELECT #").is_err());
    }

    #[test]
    fn param_placeholder() {
        assert_eq!(kinds("?")[0], Token::Param);
    }
}
