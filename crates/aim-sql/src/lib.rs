//! SQL front-end for the AIM index advisor.
//!
//! This crate provides the pieces of a SQL processing stack that AIM's
//! *structural* candidate generation depends on:
//!
//! * a [`lexer`] and recursive-descent [`parser`] for the transactional SQL
//!   subset the paper targets (`SELECT` with projections, `WHERE` AND/OR
//!   predicate trees, inner joins, `GROUP BY`, `ORDER BY`, `LIMIT`,
//!   aggregates, plus `INSERT`/`UPDATE`/`DELETE` and DDL),
//! * an [`ast`] whose shape exposes exactly the *structural metadata* of
//!   Table I in the paper (per-column operations, join-graph edges, the
//!   grouping of predicates in AND–OR chains), and
//! * a query [`normalize`]r which replaces literals with `?` placeholders so
//!   executions of the same query shape aggregate under one fingerprint
//!   (§III-A1 of the paper).
//!
//! # Example
//!
//! ```
//! use aim_sql::{parse_statement, normalize::normalize_statement};
//!
//! let stmt = parse_statement(
//!     "SELECT id, name FROM students WHERE score > 90 ORDER BY name LIMIT 10",
//! ).unwrap();
//! let norm = normalize_statement(&stmt);
//! assert_eq!(
//!     norm.text,
//!     "SELECT id, name FROM students WHERE score > ? ORDER BY name ASC LIMIT ?"
//! );
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use ast::{
    BinOp, ColumnRef, CreateIndex, CreateTable, Delete, Expr, Insert, Literal, OrderByItem,
    Select, SelectItem, Statement, TableRef, Update,
};
pub use error::ParseError;
pub use normalize::{NormalizedQuery, QueryFingerprint};

/// Parses a single SQL statement.
///
/// This is the main entry point of the crate. Trailing semicolons are
/// permitted; trailing garbage is an error.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    parser::Parser::new(sql)?.parse_single_statement()
}

/// Parses a semicolon-separated script into a list of statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, ParseError> {
    parser::Parser::new(sql)?.parse_script()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let sql = "SELECT a.x, b.y FROM a, b WHERE a.id = b.id AND a.z > 5";
        let stmt = parse_statement(sql).unwrap();
        let printed = stmt.to_string();
        // Re-parsing the printed form must produce the same AST.
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn script_parsing_splits_statements() {
        let stmts = parse_script("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(stmts.len(), 2);
    }
}
