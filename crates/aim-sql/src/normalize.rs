//! Query normalization (parameterization), §III-A1 of the paper.
//!
//! A normalized query replaces every literal with a `?` placeholder so that
//! executions of the same query *shape* — differing only in constants —
//! aggregate under a single fingerprint in the workload monitor. `IN` lists
//! additionally collapse to a single placeholder, since list length varies
//! per execution.

use crate::ast::*;

/// Stable 64-bit fingerprint of a normalized query (FNV-1a over its text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u64);

impl std::fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The result of normalizing a statement: the parameterized AST, its SQL
/// text, and a fingerprint derived from the text.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    pub statement: Statement,
    pub text: String,
    pub fingerprint: QueryFingerprint,
}

/// Normalizes a statement by replacing every literal with `?` and collapsing
/// `IN` lists, then fingerprints the printed form.
pub fn normalize_statement(stmt: &Statement) -> NormalizedQuery {
    let statement = match stmt {
        Statement::Select(s) => Statement::Select(normalize_select(s)),
        Statement::Insert(i) => Statement::Insert(Insert {
            table: i.table.clone(),
            columns: i.columns.clone(),
            // All VALUES rows collapse to one row of placeholders: batch
            // size should not change the query's identity.
            rows: vec![vec![Expr::Literal(Literal::Param); i.columns.len().max(
                i.rows.first().map_or(0, Vec::len),
            )]],
        }),
        Statement::Update(u) => Statement::Update(Update {
            table: u.table.clone(),
            assignments: u
                .assignments
                .iter()
                .map(|(c, e)| (c.clone(), normalize_expr(e)))
                .collect(),
            where_clause: u.where_clause.as_ref().map(normalize_expr),
        }),
        Statement::Delete(d) => Statement::Delete(Delete {
            table: d.table.clone(),
            where_clause: d.where_clause.as_ref().map(normalize_expr),
        }),
        // DDL has no parameters worth collapsing.
        other => other.clone(),
    };
    let text = statement.to_string();
    let fingerprint = QueryFingerprint(fnv1a(text.as_bytes()));
    NormalizedQuery {
        statement,
        text,
        fingerprint,
    }
}

fn normalize_select(s: &Select) -> Select {
    Select {
        distinct: s.distinct,
        items: s
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: normalize_expr(expr),
                    alias: alias.clone(),
                },
            })
            .collect(),
        from: s.from.clone(),
        where_clause: s.where_clause.as_ref().map(normalize_expr),
        group_by: s.group_by.iter().map(normalize_expr).collect(),
        having: s.having.as_ref().map(normalize_expr),
        order_by: s
            .order_by
            .iter()
            .map(|o| OrderByItem {
                expr: normalize_expr(&o.expr),
                desc: o.desc,
            })
            .collect(),
        limit: s.limit.as_ref().map(normalize_expr),
    }
}

fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Literal(_) => Expr::Literal(Literal::Param),
        Expr::Column(c) => Expr::Column(c.clone()),
        Expr::And(children) => Expr::And(children.iter().map(normalize_expr).collect()),
        Expr::Or(children) => Expr::Or(children.iter().map(normalize_expr).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(normalize_expr(inner))),
        Expr::Neg(inner) => Expr::Neg(Box::new(normalize_expr(inner))),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(normalize_expr(left)),
            op: *op,
            right: Box::new(normalize_expr(right)),
        },
        Expr::InList {
            expr,
            list: _,
            negated,
        } => Expr::InList {
            expr: Box::new(normalize_expr(expr)),
            // Collapse the whole list to one placeholder.
            list: vec![Expr::Literal(Literal::Param)],
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(normalize_expr(expr)),
            low: Box::new(normalize_expr(low)),
            high: Box::new(normalize_expr(high)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(normalize_expr(expr)),
            pattern: Box::new(normalize_expr(pattern)),
            negated: *negated,
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(normalize_expr(a))),
            distinct: *distinct,
        },
    }
}

/// FNV-1a hash, used for stable cross-run fingerprints (unlike `DefaultHasher`
/// which is seeded per process).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn norm(sql: &str) -> NormalizedQuery {
        normalize_statement(&parse_statement(sql).unwrap())
    }

    #[test]
    fn literals_become_params() {
        let n = norm("SELECT id, name FROM students WHERE score > 90");
        assert_eq!(n.text, "SELECT id, name FROM students WHERE score > ?");
    }

    #[test]
    fn same_shape_same_fingerprint() {
        let a = norm("SELECT x FROM t WHERE a = 1 AND b = 'p'");
        let b = norm("SELECT x FROM t WHERE a = 42 AND b = 'q'");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn different_shape_different_fingerprint() {
        let a = norm("SELECT x FROM t WHERE a = 1");
        let b = norm("SELECT x FROM t WHERE b = 1");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn in_lists_collapse() {
        let a = norm("SELECT x FROM t WHERE a IN (1, 2, 3)");
        let b = norm("SELECT x FROM t WHERE a IN (9)");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.text, "SELECT x FROM t WHERE a IN (?)");
    }

    #[test]
    fn insert_batch_size_collapses() {
        let a = norm("INSERT INTO t (a, b) VALUES (1, 2)");
        let b = norm("INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (5, 6)");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn update_and_delete_normalize() {
        let u = norm("UPDATE t SET a = 5 WHERE id = 9");
        assert_eq!(u.text, "UPDATE t SET a = ? WHERE id = ?");
        let d = norm("DELETE FROM t WHERE id = 9");
        assert_eq!(d.text, "DELETE FROM t WHERE id = ?");
    }

    #[test]
    fn normalization_is_idempotent() {
        let once = norm("SELECT x FROM t WHERE a = 1 AND b IN (1,2)");
        let twice = normalize_statement(&once.statement);
        assert_eq!(once.fingerprint, twice.fingerprint);
        assert_eq!(once.text, twice.text);
    }

    #[test]
    fn fnv1a_reference_vector() {
        // Known FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn order_by_direction_is_preserved() {
        let a = norm("SELECT x FROM t ORDER BY a DESC");
        let b = norm("SELECT x FROM t ORDER BY a ASC");
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
