//! Recursive-descent parser for the supported SQL subset.
//!
//! Grammar highlights:
//!
//! * Expression precedence (loosest to tightest):
//!   `OR` < `AND` < `NOT` < comparison / `IN` / `BETWEEN` / `LIKE` / `IS`
//!   < `+ -` < `* / %` < unary minus / atoms.
//! * `FROM a JOIN b ON p` is normalised to `FROM a, b` with `p` conjoined
//!   into the WHERE clause; only inner joins are supported, matching the
//!   join treatment in the paper (§IV-C).

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, SpannedToken, Token};

/// SQL parser over a pre-lexed token stream.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    /// Lexes `sql` and prepares a parser over it.
    pub fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Self {
            tokens: lex(sql)?,
            pos: 0,
        })
    }

    /// Parses exactly one statement, allowing trailing semicolons.
    pub fn parse_single_statement(&mut self) -> Result<Statement, ParseError> {
        let stmt = self.parse_statement()?;
        while self.eat(&Token::Semicolon) {}
        self.expect_eof()?;
        Ok(stmt)
    }

    /// Parses a semicolon-separated script.
    pub fn parse_script(&mut self) -> Result<Vec<Statement>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            while self.eat(&Token::Semicolon) {}
            if self.peek() == &Token::Eof {
                break;
            }
            stmts.push(self.parse_statement()?);
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Token::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.parse_select()?)),
                "INSERT" => self.parse_insert(),
                "UPDATE" => self.parse_update(),
                "DELETE" => self.parse_delete(),
                "CREATE" => self.parse_create(),
                "DROP" => self.parse_drop(),
                other => Err(self.error(format!("unexpected keyword {other}"))),
            },
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------------- SELECT

    fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        let mut join_predicates: Vec<Expr> = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.parse_table_ref()?);
            loop {
                if self.eat(&Token::Comma) {
                    from.push(self.parse_table_ref()?);
                } else if self.peek_join_keyword() {
                    // [INNER|CROSS] JOIN table [ON predicate]
                    self.eat_keyword("INNER");
                    self.eat_keyword("CROSS");
                    self.expect_keyword("JOIN")?;
                    from.push(self.parse_table_ref()?);
                    if self.eat_keyword("ON") {
                        join_predicates.push(self.parse_expr()?);
                    }
                } else {
                    break;
                }
            }
        }

        let mut where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        if !join_predicates.is_empty() {
            let mut parts = join_predicates;
            if let Some(w) = where_clause.take() {
                parts.push(w);
            }
            where_clause = Some(Expr::and(parts));
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn peek_join_keyword(&self) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == "JOIN" || k == "INNER" || k == "CROSS")
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(a) = self.peek() {
            // Bare alias: `FROM orders o`.
            let a = a.clone();
            self.pos += 1;
            Some(a)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ------------------------------------------------------------------- DML

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&Token::Eq)?;
            let val = self.parse_expr()?;
            assignments.push((col, val));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ------------------------------------------------------------------- DDL

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("CREATE")?;
        if self.eat_keyword("TABLE") {
            return self.parse_create_table();
        }
        let unique = self.eat_keyword("UNIQUE");
        self.expect_keyword("INDEX")?;
        let name = self.expect_ident()?;
        self.expect_keyword("ON")?;
        let table = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
        }))
    }

    fn parse_create_table(&mut self) -> Result<Statement, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.expect_ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let col = self.expect_ident()?;
                let ty = self.parse_sql_type()?;
                columns.push((col, ty));
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
        }))
    }

    fn parse_sql_type(&mut self) -> Result<SqlType, ParseError> {
        let name = self.expect_ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" => SqlType::BigInt,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => SqlType::Double,
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" | "DATE" | "DATETIME" => SqlType::Varchar,
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            other => return Err(self.error(format!("unknown type {other}"))),
        };
        // Optional length/precision suffix like VARCHAR(255) or DECIMAL(10, 2).
        if self.eat(&Token::LParen) {
            loop {
                match self.peek() {
                    Token::Int(_) | Token::Float(_) => self.pos += 1,
                    other => return Err(self.error(format!("expected number, got {other:?}"))),
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(ty)
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("INDEX")?;
        let name = self.expect_ident()?;
        self.expect_keyword("ON")?;
        let table = self.expect_ident()?;
        Ok(Statement::DropIndex { name, table })
    }

    // ----------------------------------------------------------- expressions

    /// Parses a full boolean/scalar expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_and()?;
        if !self.peek_keyword("OR") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_keyword("OR") {
            parts.push(self.parse_and()?);
        }
        Ok(Expr::or(parts))
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_not()?;
        if !self.peek_keyword("AND") {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat_keyword("AND") {
            parts.push(self.parse_not()?);
        }
        Ok(Expr::and(parts))
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        // Postfix predicate forms, possibly negated: IN, BETWEEN, LIKE, IS.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN or LIKE after NOT"));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::NullSafeEq => BinOp::NullSafeEq,
            Token::NotEq => BinOp::NotEq,
            Token::Lt => BinOp::Lt,
            Token::LtEq => BinOp::LtEq,
            Token::Gt => BinOp::Gt,
            Token::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Token::Float(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Token::Param => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Param))
            }
            Token::LParen => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Keyword(k) => match k.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Null))
                }
                "TRUE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(true)))
                }
                "FALSE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(false)))
                }
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => self.parse_aggregate(&k),
                other => Err(self.error(format!("unexpected keyword {other} in expression"))),
            },
            Token::Ident(name) => {
                self.pos += 1;
                if self.eat(&Token::Dot) {
                    if let Token::Ident(col) = self.peek().clone() {
                        self.pos += 1;
                        Ok(Expr::Column(ColumnRef::qualified(name, col)))
                    } else {
                        Err(self.error("expected column name after '.'"))
                    }
                } else {
                    Ok(Expr::Column(ColumnRef::bare(name)))
                }
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_aggregate(&mut self, name: &str) -> Result<Expr, ParseError> {
        let func = match name {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            other => return Err(self.error(format!("unknown aggregate {other}"))),
        };
        self.pos += 1;
        self.expect(&Token::LParen)?;
        if self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(Expr::Aggregate {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_keyword("DISTINCT");
        let arg = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Aggregate {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }

    // --------------------------------------------------------------- helpers

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.pos += 1;
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.error(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.tokens[self.pos].offset)
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::*;
    use crate::parse_statement;

    fn select(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = select("SELECT id, name FROM students WHERE score > 90");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from, vec![TableRef::new("students")]);
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinOp::Gt, .. })
        ));
    }

    #[test]
    fn select_star() {
        let s = select("SELECT * FROM t");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn comma_join_and_qualified_columns() {
        let s = select("SELECT t1.col1 FROM t1, t2, t3 WHERE t1.col2 = t3.col2 AND t2.col4 = t3.col7");
        assert_eq!(s.from.len(), 3);
        match s.where_clause.unwrap() {
            Expr::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn explicit_join_folds_on_into_where() {
        let s = select("SELECT a.x FROM a JOIN b ON a.id = b.id WHERE a.y = 1");
        assert_eq!(s.from.len(), 2);
        match s.where_clause.unwrap() {
            Expr::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected AND with ON folded in, got {other:?}"),
        }
    }

    #[test]
    fn table_aliases() {
        let s = select("SELECT o.id FROM orders AS o, customers c");
        assert_eq!(s.from[0].alias.as_deref(), Some("o"));
        assert_eq!(s.from[1].alias.as_deref(), Some("c"));
        assert_eq!(s.from[1].binding(), "c");
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = select(
            "SELECT col3, COUNT(*) FROM t1 WHERE col2 = 5 GROUP BY col3 \
             HAVING COUNT(*) > 2 ORDER BY col3 DESC LIMIT 10",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(Expr::Literal(Literal::Int(10))));
    }

    #[test]
    fn and_or_precedence() {
        // a = 1 AND b = 2 OR c = 3  parses as  (a AND b) OR c
        let s = select("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3");
        match s.where_clause.unwrap() {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::And(_)));
            }
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn parenthesised_or_inside_and() {
        let s = select("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
        match s.where_clause.unwrap() {
            Expr::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Or(_)));
            }
            other => panic!("expected AND at top, got {other:?}"),
        }
    }

    #[test]
    fn in_between_like_is_null() {
        let s = select(
            "SELECT x FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 5 \
             AND c LIKE 'ab%' AND d IS NOT NULL AND e NOT IN (4)",
        );
        match s.where_clause.unwrap() {
            Expr::And(parts) => {
                assert!(matches!(parts[0], Expr::InList { negated: false, .. }));
                assert!(matches!(parts[1], Expr::Between { negated: false, .. }));
                assert!(matches!(parts[2], Expr::Like { negated: false, .. }));
                assert!(matches!(parts[3], Expr::IsNull { negated: true, .. }));
                assert!(matches!(parts[4], Expr::InList { negated: true, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let s = select("SELECT x FROM t WHERE a = 1 + 2 * 3");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => match *right {
                Expr::Binary {
                    op: BinOp::Add,
                    right: inner,
                    ..
                } => assert!(matches!(*inner, Expr::Binary { op: BinOp::Mul, .. })),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(i) => {
                assert_eq!(i.columns, vec!["a", "b"]);
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        match parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 7").unwrap() {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("DELETE FROM t WHERE id = 7").unwrap() {
            Statement::Delete(d) => assert!(d.where_clause.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_with_pk() {
        match parse_statement(
            "CREATE TABLE t (id BIGINT, name VARCHAR(64), score DOUBLE, PRIMARY KEY (id))",
        )
        .unwrap()
        {
            Statement::CreateTable(c) => {
                assert_eq!(c.columns.len(), 3);
                assert_eq!(c.primary_key, vec!["id"]);
                assert_eq!(c.columns[1].1, SqlType::Varchar);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_and_drop_index() {
        match parse_statement("CREATE INDEX idx1 ON t (a, b, c)").unwrap() {
            Statement::CreateIndex(c) => {
                assert_eq!(c.columns, vec!["a", "b", "c"]);
                assert!(!c.unique);
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("CREATE UNIQUE INDEX idx2 ON t (a)").unwrap() {
            Statement::CreateIndex(c) => assert!(c.unique),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DROP INDEX idx1 ON t").unwrap(),
            Statement::DropIndex { .. }
        ));
    }

    #[test]
    fn aggregates() {
        let s = select("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w) FROM t");
        assert_eq!(s.items.len(), 5);
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Aggregate { func, arg, .. },
                ..
            } => {
                assert_eq!(*func, AggFunc::Count);
                assert!(arg.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn param_placeholders_parse() {
        let s = select("SELECT x FROM t WHERE a = ? AND b IN (?) LIMIT ?");
        assert!(s.where_clause.is_some());
        assert_eq!(s.limit, Some(Expr::Literal(Literal::Param)));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_statement("SELECT 1 FROM t garbage garbage").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
    }

    #[test]
    fn null_safe_equality() {
        let s = select("SELECT x FROM t WHERE a <=> NULL");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Binary {
                op: BinOp::NullSafeEq,
                ..
            }
        ));
    }

    #[test]
    fn decimal_type_with_precision() {
        match parse_statement(
            "CREATE TABLE m (id BIGINT, price DECIMAL(10, 2), PRIMARY KEY (id))",
        )
        .unwrap()
        {
            Statement::CreateTable(c) => assert_eq!(c.columns[1].1, SqlType::Double),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn composite_primary_key() {
        match parse_statement(
            "CREATE TABLE e (a BIGINT, b BIGINT, v BIGINT, PRIMARY KEY (a, b))",
        )
        .unwrap()
        {
            Statement::CreateTable(c) => assert_eq!(c.primary_key, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quoted_identifiers_usable_as_names() {
        let s = select("SELECT `order` FROM \"select\" WHERE `order` = 1");
        assert_eq!(s.from[0].name, "select");
    }

    #[test]
    fn chained_joins_fold_all_on_clauses() {
        let s = select(
            "SELECT a.x FROM a JOIN b ON a.id = b.id JOIN c ON b.id = c.id WHERE a.x = 1",
        );
        assert_eq!(s.from.len(), 3);
        match s.where_clause.unwrap() {
            Expr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_negative_and_nested_not() {
        let s = select("SELECT x FROM t WHERE NOT NOT a = 1");
        match s.where_clause.unwrap() {
            Expr::Not(inner) => assert!(matches!(*inner, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("   ;  ;").is_err());
    }

    #[test]
    fn scientific_notation_literals() {
        let s = select("SELECT x FROM t WHERE a > 1.5e2");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Literal::Float(150.0)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_predicate() {
        let s = select("SELECT x FROM t WHERE NOT a = 1");
        assert!(matches!(s.where_clause.unwrap(), Expr::Not(_)));
    }
}
