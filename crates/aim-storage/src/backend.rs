//! Pluggable storage backends.
//!
//! The engine keeps its decoded rows and index entries in memory in both
//! backends — `BTreeMap`s answer every query. What a [`StorageBackend`]
//! adds is (a) *durability*: mutations write through to paged structures
//! (heap chain, primary-key B+-tree, one B+-tree per secondary index) in a
//! single WAL-protected pager transaction before the in-memory state
//! changes, and (b) *measured I/O*: read paths walk the real pages through
//! the buffer pool, so [`IoStats`] reports what a disk engine would
//! actually touch instead of the simulated arithmetic model.
//!
//! [`MemoryBackend`] is the default: every hook is a no-op, queries charge
//! the simulated model, nothing survives the process. It is the fast
//! substrate tuning clones run on. [`DiskBackend`] persists to an
//! `aim.db`/`aim.wal` pair and recovers committed state on
//! [`DiskBackend::open`].
//!
//! ## Failure contract
//!
//! `persist_*` hooks run **before** the in-memory apply. On any error the
//! pager transaction is rolled back and the backend's table catalog is
//! restored from a snapshot, so memory and disk never diverge: either both
//! see the mutation or neither does. `account_*` hooks never fail the
//! query — a mid-scan pager error (e.g. an injected read fault) falls back
//! to the simulated cost model and bumps
//! [`StorageCounters::account_fallbacks`].

use crate::btree_page;
use crate::codec::{self, CatIndex, CatTable};
use crate::error::StorageError;
use crate::heap;
use crate::io::IoStats;
use crate::pager::page::{Page, PageType};
use crate::pager::{Pager, PagerOptions};
use crate::schema::{IndexDef, TableSchema};
use crate::value::{Key, Row};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Which backend a database runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Volatile: simulated I/O costs, nothing survives the process.
    Memory,
    /// Paged files with WAL recovery and measured I/O.
    Disk,
}

/// Aggregated buffer-pool / WAL / pager counters, exported through
/// `aim-telemetry` and the `bench_storage` report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    pub bp_hits: u64,
    pub bp_misses: u64,
    pub bp_evictions: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub pages_read: u64,
    pub pages_written: u64,
    pub checkpoints: u64,
    pub checkpoint_failures: u64,
    pub recovered_batches: u64,
    pub recovered_records: u64,
    pub torn_tails_discarded: u64,
    pub checksum_failures: u64,
    /// Measured-accounting attempts that hit a pager error and fell back
    /// to the simulated cost model.
    pub account_fallbacks: u64,
}

/// A secondary-index entry tagged with the index it belongs to: what the
/// table hands the backend so the backend never re-derives column layouts.
pub type TaggedEntry = (String, Key);

/// Storage backend contract.
///
/// Every hook has a no-op default, which *is* the in-memory backend: a
/// backend only overrides what it persists or measures. `persist_*` hooks
/// are called before the corresponding in-memory mutation and abort it by
/// returning an error; `account_*` hooks return `true` when they charged
/// `io` from real page walks (the caller then skips the simulated charge).
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn persist_create_table(&self, schema: &TableSchema) -> Result<(), StorageError> {
        let _ = schema;
        Ok(())
    }

    fn persist_insert(
        &self,
        table: &str,
        pk: &Key,
        row: &Row,
        entries: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        let _ = (table, pk, row, entries);
        Ok(())
    }

    fn persist_delete(
        &self,
        table: &str,
        pk: &Key,
        entries: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        let _ = (table, pk, entries);
        Ok(())
    }

    fn persist_update(
        &self,
        table: &str,
        pk: &Key,
        new_row: &Row,
        removed: &[TaggedEntry],
        added: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        let _ = (table, pk, new_row, removed, added);
        Ok(())
    }

    /// Persists a fully built index. `entries` are in key order.
    fn persist_create_index(
        &self,
        def: &IndexDef,
        entries: &[Key],
    ) -> Result<(), StorageError> {
        let _ = (def, entries);
        Ok(())
    }

    fn persist_drop_index(&self, table: &str, index: &str) -> Result<(), StorageError> {
        let _ = (table, index);
        Ok(())
    }

    fn account_full_scan(&self, table: &str, io: &mut IoStats) -> bool {
        let _ = (table, io);
        false
    }

    fn account_pk_lookup(&self, table: &str, pk: &Key, io: &mut IoStats) -> bool {
        let _ = (table, pk, io);
        false
    }

    fn account_pk_range(
        &self,
        table: &str,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        io: &mut IoStats,
    ) -> bool {
        let _ = (table, lower, upper, io);
        false
    }

    fn account_index_range(
        &self,
        table: &str,
        index: &str,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        io: &mut IoStats,
    ) -> bool {
        let _ = (table, index, lower, upper, io);
        false
    }

    /// Flushes dirty pages and truncates the WAL.
    fn checkpoint(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Models a process crash: volatile state vanishes, nothing flushes.
    fn simulate_crash(&self) {}

    fn counters(&self) -> StorageCounters {
        StorageCounters::default()
    }
}

// ---------------------------------------------------------------- memory

/// The no-op backend: all state is in the engine's memory structures.
#[derive(Debug, Default)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {}

/// The process-wide shared in-memory backend (it is stateless, so one
/// instance serves every table and database).
pub fn memory_backend() -> Arc<dyn StorageBackend> {
    static MEM: OnceLock<Arc<MemoryBackend>> = OnceLock::new();
    MEM.get_or_init(|| Arc::new(MemoryBackend)).clone() as Arc<dyn StorageBackend>
}

// ------------------------------------------------------------------ disk

/// Per-table physical roots, mirrored in the on-disk catalog.
#[derive(Debug, Clone, PartialEq)]
struct TableMeta {
    schema: TableSchema,
    heap_first: u32,
    heap_last: u32,
    pk_root: u32,
    /// index name → (definition, tree root).
    indexes: BTreeMap<String, (IndexDef, u32)>,
}

#[derive(Debug)]
struct DiskInner {
    pager: Pager,
    tables: BTreeMap<String, TableMeta>,
    /// Set by [`StorageBackend::simulate_crash`]: suppresses the drop-time
    /// checkpoint so the reopen exercises WAL recovery.
    crashed: bool,
    account_fallbacks: u64,
    /// Counter values already pushed to telemetry (delta tracking).
    tel_flushed: StorageCounters,
}

/// One table's recovered state, returned by [`DiskBackend::open`] for the
/// database to rebuild its in-memory structures from.
#[derive(Debug)]
pub struct LoadedTable {
    pub schema: TableSchema,
    /// Rows decoded from the heap chain, in physical order.
    pub rows: Vec<Row>,
    /// For each secondary index: its definition and the entries read back
    /// from its B+-tree (key order) — *not* re-derived from the rows, so a
    /// tree that diverged from the heap surfaces immediately.
    pub indexes: Vec<(IndexDef, Vec<Key>)>,
}

/// The paged, WAL-protected backend.
#[derive(Debug)]
pub struct DiskBackend {
    inner: Mutex<DiskInner>,
}

impl DiskBackend {
    /// Opens (creating if absent) the database under `dir`, running WAL
    /// recovery first, and returns the backend plus every table's
    /// recovered state.
    pub fn open(
        dir: &Path,
        opts: PagerOptions,
    ) -> Result<(Arc<DiskBackend>, Vec<LoadedTable>), StorageError> {
        let mut pager = Pager::open(dir, opts)?;
        let cats = read_catalog(&mut pager)?;
        let mut tables = BTreeMap::new();
        let mut loaded = Vec::new();
        for cat in cats {
            let mut io = IoStats::new();
            let mut raw_rows: Vec<Vec<u8>> = Vec::new();
            heap::scan(&mut pager, cat.heap_first, &mut io, |_, bytes| {
                raw_rows.push(bytes.to_vec())
            })?;
            let rows = raw_rows
                .iter()
                .map(|b| codec::decode_tuple(b))
                .collect::<Result<Vec<Row>, _>>()?;
            // Recovery invariant: the PK tree and the heap must agree on
            // cardinality; a mismatch means a torn mutation survived.
            let pk_count = btree_page::count(&mut pager, cat.pk_root)?;
            if pk_count != rows.len() as u64 {
                return Err(StorageError::Corrupt {
                    detail: format!(
                        "table {}: {} heap rows but {} PK entries",
                        cat.schema.name,
                        rows.len(),
                        pk_count
                    ),
                });
            }
            let mut indexes = Vec::new();
            let mut index_meta = BTreeMap::new();
            for ci in &cat.indexes {
                let mut entries = Vec::new();
                btree_page::range(
                    &mut pager,
                    ci.root,
                    Bound::Unbounded,
                    Bound::Unbounded,
                    &mut io,
                    |k, _| entries.push(k),
                )?;
                indexes.push((ci.def.clone(), entries));
                index_meta.insert(ci.def.name.clone(), (ci.def.clone(), ci.root));
            }
            tables.insert(
                cat.schema.name.clone(),
                TableMeta {
                    schema: cat.schema.clone(),
                    heap_first: cat.heap_first,
                    heap_last: cat.heap_last,
                    pk_root: cat.pk_root,
                    indexes: index_meta,
                },
            );
            loaded.push(LoadedTable {
                schema: cat.schema,
                rows,
                indexes,
            });
        }
        let backend = Arc::new(DiskBackend {
            inner: Mutex::new(DiskInner {
                pager,
                tables,
                crashed: false,
                account_fallbacks: 0,
                tel_flushed: StorageCounters::default(),
            }),
        });
        Ok((backend, loaded))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs one mutation as a pager transaction. On success the commit
    /// fsyncs the WAL batch; on any failure the pager rolls back and the
    /// table catalog is restored, leaving disk state exactly as before.
    fn with_tx<T>(
        &self,
        f: impl FnOnce(&mut DiskInner) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut inner = self.lock();
        let snapshot = inner.tables.clone();
        match f(&mut inner) {
            Ok(t) => match inner.pager.commit() {
                Ok(()) => {
                    flush_telemetry(&mut inner);
                    Ok(t)
                }
                Err(e) => {
                    inner.tables = snapshot;
                    Err(e)
                }
            },
            Err(e) => {
                inner.pager.rollback();
                inner.tables = snapshot;
                Err(e)
            }
        }
    }

    fn table_meta(
        inner: &DiskInner,
        table: &str,
    ) -> Result<TableMeta, StorageError> {
        inner
            .tables
            .get(table)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))
    }

    /// Stores the (possibly changed) meta back and rewrites the on-disk
    /// catalog if any physical root moved.
    fn store_meta(
        inner: &mut DiskInner,
        before: &TableMeta,
        after: TableMeta,
    ) -> Result<(), StorageError> {
        let changed = *before != after;
        inner.tables.insert(after.schema.name.clone(), after);
        if changed {
            write_catalog(&mut inner.pager, &inner.tables)?;
        }
        Ok(())
    }

    /// Resolves a PK to its heap location via the PK tree.
    fn locate(
        inner: &mut DiskInner,
        pk_root: u32,
        pk: &Key,
    ) -> Result<heap::RowLoc, StorageError> {
        let mut scratch = IoStats::new();
        let rid = btree_page::lookup(&mut inner.pager, pk_root, pk, &mut scratch)?
            .ok_or_else(|| StorageError::Corrupt {
                detail: format!("primary key {pk:?} missing from PK tree"),
            })?;
        codec::decode_rowid(&rid)
    }
}

impl StorageBackend for DiskBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Disk
    }

    fn persist_create_table(&self, schema: &TableSchema) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            if inner.tables.contains_key(&schema.name) {
                return Err(StorageError::DuplicateTable(schema.name.clone()));
            }
            let (first, last) = heap::create(&mut inner.pager)?;
            let pk_root = btree_page::create(&mut inner.pager)?;
            inner.tables.insert(
                schema.name.clone(),
                TableMeta {
                    schema: schema.clone(),
                    heap_first: first,
                    heap_last: last,
                    pk_root,
                    indexes: BTreeMap::new(),
                },
            );
            write_catalog(&mut inner.pager, &inner.tables)
        })
    }

    fn persist_insert(
        &self,
        table: &str,
        pk: &Key,
        row: &Row,
        entries: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            let before = Self::table_meta(inner, table)?;
            let mut tm = before.clone();
            let row_bytes = codec::encode_tuple(row);
            let ((pg, slot), last) = heap::insert(&mut inner.pager, tm.heap_last, &row_bytes)?;
            tm.heap_last = last;
            let rid = codec::encode_rowid(pg, slot);
            tm.pk_root = btree_page::insert(&mut inner.pager, tm.pk_root, pk, &rid)?;
            for (name, entry) in entries {
                let (_, root) = tm.indexes.get_mut(name).ok_or_else(|| {
                    StorageError::UnknownIndex {
                        table: table.to_string(),
                        index: name.clone(),
                    }
                })?;
                *root = btree_page::insert(&mut inner.pager, *root, entry, &[])?;
            }
            Self::store_meta(inner, &before, tm)
        })
    }

    fn persist_delete(
        &self,
        table: &str,
        pk: &Key,
        entries: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            let before = Self::table_meta(inner, table)?;
            let mut tm = before.clone();
            let loc = Self::locate(inner, tm.pk_root, pk)?;
            heap::delete(&mut inner.pager, loc)?;
            let (root, removed) = btree_page::remove(&mut inner.pager, tm.pk_root, pk)?;
            debug_assert!(removed, "locate() found the key");
            tm.pk_root = root;
            for (name, entry) in entries {
                let (_, root) = tm.indexes.get_mut(name).ok_or_else(|| {
                    StorageError::UnknownIndex {
                        table: table.to_string(),
                        index: name.clone(),
                    }
                })?;
                let (r, _) = btree_page::remove(&mut inner.pager, *root, entry)?;
                *root = r;
            }
            Self::store_meta(inner, &before, tm)
        })
    }

    fn persist_update(
        &self,
        table: &str,
        pk: &Key,
        new_row: &Row,
        removed: &[TaggedEntry],
        added: &[TaggedEntry],
    ) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            let before = Self::table_meta(inner, table)?;
            let mut tm = before.clone();
            let loc = Self::locate(inner, tm.pk_root, pk)?;
            let row_bytes = codec::encode_tuple(new_row);
            let (new_loc, last) =
                heap::update(&mut inner.pager, loc, tm.heap_last, &row_bytes)?;
            tm.heap_last = last;
            if new_loc != loc {
                let rid = codec::encode_rowid(new_loc.0, new_loc.1);
                tm.pk_root = btree_page::insert(&mut inner.pager, tm.pk_root, pk, &rid)?;
            }
            for (name, entry) in removed {
                let (_, root) = tm.indexes.get_mut(name).ok_or_else(|| {
                    StorageError::UnknownIndex {
                        table: table.to_string(),
                        index: name.clone(),
                    }
                })?;
                let (r, _) = btree_page::remove(&mut inner.pager, *root, entry)?;
                *root = r;
            }
            for (name, entry) in added {
                let (_, root) = tm.indexes.get_mut(name).ok_or_else(|| {
                    StorageError::UnknownIndex {
                        table: table.to_string(),
                        index: name.clone(),
                    }
                })?;
                *root = btree_page::insert(&mut inner.pager, *root, entry, &[])?;
            }
            Self::store_meta(inner, &before, tm)
        })
    }

    fn persist_create_index(
        &self,
        def: &IndexDef,
        entries: &[Key],
    ) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            let before = Self::table_meta(inner, &def.table)?;
            let mut tm = before.clone();
            if tm.indexes.contains_key(&def.name) {
                return Err(StorageError::DuplicateIndex {
                    table: def.table.clone(),
                    index: def.name.clone(),
                });
            }
            let mut root = btree_page::create(&mut inner.pager)?;
            for entry in entries {
                root = btree_page::insert(&mut inner.pager, root, entry, &[])?;
            }
            tm.indexes
                .insert(def.name.clone(), (def.clone(), root));
            Self::store_meta(inner, &before, tm)
        })
    }

    fn persist_drop_index(&self, table: &str, index: &str) -> Result<(), StorageError> {
        self.with_tx(|inner| {
            let before = Self::table_meta(inner, table)?;
            let mut tm = before.clone();
            let (_, root) = tm.indexes.remove(index).ok_or_else(|| {
                StorageError::UnknownIndex {
                    table: table.to_string(),
                    index: index.to_string(),
                }
            })?;
            btree_page::free(&mut inner.pager, root)?;
            Self::store_meta(inner, &before, tm)
        })
    }

    fn account_full_scan(&self, table: &str, io: &mut IoStats) -> bool {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let Some(tm) = inner.tables.get(table) else {
            return false;
        };
        let first = tm.heap_first;
        io.seeks += 1;
        match heap::scan(&mut inner.pager, first, io, |_, _| {}) {
            Ok(rows) => {
                io.rows_read += rows;
                true
            }
            Err(_) => {
                inner.account_fallbacks += 1;
                false
            }
        }
    }

    fn account_pk_lookup(&self, table: &str, pk: &Key, io: &mut IoStats) -> bool {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let Some(tm) = inner.tables.get(table) else {
            return false;
        };
        let pk_root = tm.pk_root;
        io.seeks += 1;
        let fetched = btree_page::lookup(&mut inner.pager, pk_root, pk, io).and_then(
            |hit| match hit {
                Some(rid) => {
                    let loc = codec::decode_rowid(&rid)?;
                    heap::get(&mut inner.pager, loc, io)?;
                    io.rows_read += 1;
                    Ok(())
                }
                None => Ok(()),
            },
        );
        match fetched {
            Ok(()) => true,
            Err(_) => {
                inner.account_fallbacks += 1;
                false
            }
        }
    }

    fn account_pk_range(
        &self,
        table: &str,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        io: &mut IoStats,
    ) -> bool {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let Some(tm) = inner.tables.get(table) else {
            return false;
        };
        let pk_root = tm.pk_root;
        io.seeks += 1;
        // Collect the matching rowids' heap pages during the tree walk,
        // then fetch them (consecutive duplicates collapsed — rows land in
        // insertion order, so locality is high, as in a real heap scan).
        let mut heap_pages: Vec<u32> = Vec::new();
        let walk = btree_page::range(&mut inner.pager, pk_root, lower, upper, io, |_, rid| {
            if let Ok((pg, _)) = codec::decode_rowid(rid) {
                heap_pages.push(pg);
            }
        });
        let rows = match walk {
            Ok(rows) => rows,
            Err(_) => {
                inner.account_fallbacks += 1;
                return false;
            }
        };
        io.rows_read += rows;
        heap_pages.dedup();
        for pg in heap_pages {
            if inner.pager.read_page(pg, io).is_err() {
                inner.account_fallbacks += 1;
                return false;
            }
        }
        true
    }

    fn account_index_range(
        &self,
        table: &str,
        index: &str,
        lower: Bound<&Key>,
        upper: Bound<&Key>,
        io: &mut IoStats,
    ) -> bool {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let Some(root) = inner
            .tables
            .get(table)
            .and_then(|tm| tm.indexes.get(index))
            .map(|(_, root)| *root)
        else {
            return false;
        };
        io.seeks += 1;
        match btree_page::range(&mut inner.pager, root, lower, upper, io, |_, _| {}) {
            Ok(rows) => {
                io.rows_read += rows;
                true
            }
            Err(_) => {
                inner.account_fallbacks += 1;
                false
            }
        }
    }

    fn checkpoint(&self) -> Result<(), StorageError> {
        let mut inner = self.lock();
        inner.pager.checkpoint()?;
        flush_telemetry(&mut inner);
        Ok(())
    }

    fn simulate_crash(&self) {
        let mut inner = self.lock();
        inner.pager.simulate_crash();
        inner.crashed = true;
    }

    fn counters(&self) -> StorageCounters {
        collect_counters(&self.lock())
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        let mut inner = self.lock();
        if !inner.crashed {
            // Best-effort: the WAL already protects everything a failed
            // checkpoint would have flushed.
            let _ = inner.pager.checkpoint();
        }
    }
}

fn collect_counters(inner: &DiskInner) -> StorageCounters {
    let bp = inner.pager.pool_counters();
    let wal = inner.pager.wal_counters();
    let pg = inner.pager.counters();
    StorageCounters {
        bp_hits: bp.hits,
        bp_misses: bp.misses,
        bp_evictions: bp.evictions,
        wal_bytes: wal.bytes_written,
        wal_fsyncs: wal.fsyncs,
        pages_read: pg.pages_read,
        pages_written: pg.pages_written,
        checkpoints: pg.checkpoints,
        checkpoint_failures: pg.checkpoint_failures,
        recovered_batches: pg.recovered_batches,
        recovered_records: pg.recovered_records,
        torn_tails_discarded: pg.torn_tails_discarded,
        checksum_failures: pg.checksum_failures,
        account_fallbacks: inner.account_fallbacks,
    }
}

/// Pushes counter deltas since the last flush into the telemetry registry
/// (`storage.bp.*`, `storage.wal.*`). Deltas are consumed even while
/// telemetry is disabled so enabling it mid-run starts clean.
fn flush_telemetry(inner: &mut DiskInner) {
    let now = collect_counters(inner);
    let last = inner.tel_flushed;
    inner.tel_flushed = now;
    if !aim_telemetry::is_enabled() {
        return;
    }
    let add = aim_telemetry::metrics::counter_add;
    add("storage.bp.hit", now.bp_hits - last.bp_hits);
    add("storage.bp.miss", now.bp_misses - last.bp_misses);
    add("storage.bp.evict", now.bp_evictions - last.bp_evictions);
    add("storage.wal.bytes", now.wal_bytes - last.wal_bytes);
    add("storage.wal.fsyncs", now.wal_fsyncs - last.wal_fsyncs);
}

// --------------------------------------------------------------- catalog

/// Reads the whole catalog blob from its page chain.
fn read_catalog(pager: &mut Pager) -> Result<Vec<CatTable>, StorageError> {
    let mut no = pager.meta().catalog_root;
    if no == 0 {
        return Ok(Vec::new());
    }
    let mut blob = Vec::new();
    let mut io = IoStats::new();
    while no != 0 {
        let page = pager.read_page(no, &mut io)?;
        if page.page_type()? != PageType::Catalog {
            return Err(StorageError::Corrupt {
                detail: format!("catalog chain reached a {:?} page", page.page_type()?),
            });
        }
        for cell in page.cells() {
            blob.extend_from_slice(&cell);
        }
        no = page.next_page();
    }
    codec::decode_catalog(&blob)
}

/// Rewrites the catalog chain from scratch (frees the old chain, then
/// chunks the new blob across fresh `Catalog` pages). Runs inside the
/// caller's transaction, so a failed rewrite rolls back atomically.
fn write_catalog(
    pager: &mut Pager,
    tables: &BTreeMap<String, TableMeta>,
) -> Result<(), StorageError> {
    let mut no = pager.meta().catalog_root;
    let mut io = IoStats::new();
    while no != 0 {
        let next = pager.read_page(no, &mut io)?.next_page();
        pager.free_page(no)?;
        no = next;
    }
    let cats: Vec<CatTable> = tables
        .values()
        .map(|tm| CatTable {
            schema: tm.schema.clone(),
            heap_first: tm.heap_first,
            heap_last: tm.heap_last,
            pk_root: tm.pk_root,
            indexes: tm
                .indexes
                .values()
                .map(|(def, root)| CatIndex {
                    def: def.clone(),
                    root: *root,
                })
                .collect(),
        })
        .collect();
    let blob = codec::encode_catalog(&cats);
    const CHUNK: usize = 8 * 1024;
    let mut next = 0u32;
    for chunk in blob.chunks(CHUNK).rev() {
        let page_no = pager.allocate_page()?;
        let mut page = Page::new(PageType::Catalog);
        page.add_cell(chunk).expect("catalog chunk fits a page");
        page.set_next_page(next);
        pager.write_page(page_no, page)?;
        next = page_no;
    }
    pager.set_catalog_root(next);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};
    use crate::value::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aim-backend-test-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("b", ColumnType::Str),
            ],
            &["id"],
        )
        .unwrap()
    }

    fn row(id: i64) -> Row {
        vec![
            Value::Int(id),
            Value::Int(id % 7),
            Value::Str(format!("row-{id}")),
        ]
    }

    #[test]
    fn persist_and_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        {
            let (be, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
            assert!(loaded.is_empty());
            be.persist_create_table(&schema()).unwrap();
            for i in 0..500 {
                let r = row(i);
                be.persist_insert("t", &vec![Value::Int(i)], &r, &[]).unwrap();
            }
            be.persist_delete("t", &vec![Value::Int(3)], &[]).unwrap();
        }
        let (_, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].rows.len(), 499);
        assert!(loaded[0].rows.iter().all(|r| r[0] != Value::Int(3)));
    }

    #[test]
    fn secondary_index_persists_entries() {
        let dir = tmp("index");
        let def = IndexDef::new("ix_a", "t", vec!["a".into()]);
        {
            let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
            be.persist_create_table(&schema()).unwrap();
            let mut entries = Vec::new();
            for i in 0..50 {
                let entry = vec![Value::Int(i % 7), Value::Int(i)];
                be.persist_insert(
                    "t",
                    &vec![Value::Int(i)],
                    &row(i),
                    &[("ix_a".into(), entry.clone())],
                )
                .unwrap_err(); // index does not exist yet
                entries.push(entry);
            }
            // Proper order: rows first without entries, then build.
            for i in 0..50 {
                be.persist_insert("t", &vec![Value::Int(i)], &row(i), &[]).unwrap();
            }
            entries.sort();
            be.persist_create_index(&def, &entries).unwrap();
        }
        let (_, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(loaded[0].indexes.len(), 1);
        let (got_def, got_entries) = &loaded[0].indexes[0];
        assert_eq!(got_def, &def);
        assert_eq!(got_entries.len(), 50);
        assert!(got_entries.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn failed_op_rolls_back_catalog_and_pages() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let dir = tmp("rollback");
        let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        be.persist_create_table(&schema()).unwrap();
        be.persist_insert("t", &vec![Value::Int(1)], &row(1), &[]).unwrap();
        crate::fault::arm(
            crate::fault::FaultPlan::new(5).fail(crate::pager::wal::SITE_WAL_FSYNC, 0, 1),
        );
        let err = be
            .persist_insert("t", &vec![Value::Int(2)], &row(2), &[])
            .unwrap_err();
        crate::fault::disarm();
        assert!(err.is_injected(), "{err}");
        // Retry succeeds; state holds exactly rows 1 and 2.
        be.persist_insert("t", &vec![Value::Int(2)], &row(2), &[]).unwrap();
        drop(be);
        let (_, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(loaded[0].rows.len(), 2);
    }

    #[test]
    fn crash_before_checkpoint_recovers_committed_state() {
        let dir = tmp("crash");
        {
            let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
            be.persist_create_table(&schema()).unwrap();
            for i in 0..100 {
                be.persist_insert("t", &vec![Value::Int(i)], &row(i), &[]).unwrap();
            }
            be.simulate_crash();
        }
        let (be, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(loaded[0].rows.len(), 100);
        assert!(be.counters().recovered_batches > 0, "replayed from WAL");
    }

    #[test]
    fn measured_accounting_charges_real_pages() {
        let dir = tmp("account");
        let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        be.persist_create_table(&schema()).unwrap();
        for i in 0..2000 {
            be.persist_insert("t", &vec![Value::Int(i)], &row(i), &[]).unwrap();
        }
        let mut io = IoStats::new();
        assert!(be.account_full_scan("t", &mut io));
        assert_eq!(io.rows_read, 2000);
        assert!(io.pages_read >= 2, "multi-page heap: {}", io.pages_read);
        let mut io2 = IoStats::new();
        assert!(be.account_pk_lookup("t", &vec![Value::Int(777)], &mut io2));
        assert_eq!(io2.rows_read, 1);
        assert!(io2.pages_read >= 2, "tree descent + heap page");
        assert!(
            io2.pages_read < io.pages_read,
            "a point lookup touches far fewer pages than a scan"
        );
        let lo = vec![Value::Int(100)];
        let hi = vec![Value::Int(200)];
        let mut io3 = IoStats::new();
        assert!(be.account_pk_range(
            "t",
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            &mut io3
        ));
        assert_eq!(io3.rows_read, 100);
        assert!(io3.pages_read < io.pages_read);
        // Unknown tables fall back to the simulated model.
        assert!(!be.account_full_scan("missing", &mut io));
    }

    #[test]
    fn update_moves_row_and_keeps_pk_tree_consistent() {
        let dir = tmp("update");
        {
            let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
            be.persist_create_table(&schema()).unwrap();
            for i in 0..200 {
                be.persist_insert("t", &vec![Value::Int(i)], &row(i), &[]).unwrap();
            }
            // Grow row 0 enough that it must relocate eventually.
            let fat = vec![
                Value::Int(0),
                Value::Int(0),
                Value::Str("x".repeat(9000)),
            ];
            be.persist_update("t", &vec![Value::Int(0)], &fat, &[], &[]).unwrap();
        }
        let (_, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(loaded[0].rows.len(), 200);
        let fat_row = loaded[0]
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .unwrap();
        assert_eq!(fat_row[2], Value::Str("x".repeat(9000)));
    }

    #[test]
    fn drop_index_frees_tree_and_catalog_entry() {
        let dir = tmp("dropix");
        let def = IndexDef::new("ix_a", "t", vec!["a".into()]);
        {
            let (be, _) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
            be.persist_create_table(&schema()).unwrap();
            for i in 0..50 {
                be.persist_insert("t", &vec![Value::Int(i)], &row(i), &[]).unwrap();
            }
            be.persist_create_index(&def, &[]).unwrap();
            be.persist_drop_index("t", "ix_a").unwrap();
            assert!(be.persist_drop_index("t", "ix_a").is_err());
        }
        let (_, loaded) = DiskBackend::open(&dir, PagerOptions::default()).unwrap();
        assert!(loaded[0].indexes.is_empty());
    }

    #[test]
    fn memory_backend_is_all_noops() {
        let be = memory_backend();
        assert_eq!(be.kind(), BackendKind::Memory);
        be.persist_create_table(&schema()).unwrap();
        let mut io = IoStats::new();
        assert!(!be.account_full_scan("t", &mut io));
        assert_eq!(io, IoStats::new());
        assert_eq!(be.counters(), StorageCounters::default());
        be.checkpoint().unwrap();
    }
}
