//! Paged B+-tree over the [`Pager`].
//!
//! Keys are [`codec`]-encoded [`Key`] tuples; because the encoding is not
//! order-preserving, every comparison decodes back to values and uses the
//! engine's total [`Value`](crate::value::Value) order — disk and memory
//! collate identically by construction. Leaves hold `(key, value)` cells in
//! slot order and are chained left-to-right for range scans; internal nodes
//! hold `(separator, child)` cells where `separator` is the *maximum* key
//! reachable through `child`, plus a rightmost child in the page's aux
//! pointer.
//!
//! Nodes are rewritten wholesale on modification (gather cells → mutate →
//! [`Page::set_cells`]), which keeps split/merge logic free of slot
//! surgery. Splits divide a node at half its payload bytes; a node that
//! falls under a quarter page merges with its right sibling when the
//! combined payload fits.

use crate::codec;
use crate::error::StorageError;
use crate::io::IoStats;
use crate::pager::page::{cells_fit, Page, PageType, DISK_PAGE_SIZE};
use crate::pager::Pager;
use crate::value::Key;
use std::cmp::Ordering;
use std::ops::Bound;

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        detail: detail.into(),
    }
}

// ------------------------------------------------------------------- cells

fn leaf_cell(key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut c = Vec::with_capacity(4 + key.len() + val.len());
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(&(val.len() as u16).to_le_bytes());
    c.extend_from_slice(val);
    c
}

fn parse_leaf_cell(cell: &[u8]) -> Result<(&[u8], &[u8]), StorageError> {
    if cell.len() < 2 {
        return Err(corrupt("leaf cell truncated"));
    }
    let klen = u16::from_le_bytes(cell[..2].try_into().unwrap()) as usize;
    if cell.len() < 2 + klen + 2 {
        return Err(corrupt("leaf cell key truncated"));
    }
    let key = &cell[2..2 + klen];
    let vlen =
        u16::from_le_bytes(cell[2 + klen..4 + klen].try_into().unwrap()) as usize;
    if cell.len() != 4 + klen + vlen {
        return Err(corrupt("leaf cell value truncated"));
    }
    Ok((key, &cell[4 + klen..]))
}

fn internal_cell(key: &[u8], child: u32) -> Vec<u8> {
    let mut c = Vec::with_capacity(6 + key.len());
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(&child.to_le_bytes());
    c
}

fn parse_internal_cell(cell: &[u8]) -> Result<(&[u8], u32), StorageError> {
    if cell.len() < 2 {
        return Err(corrupt("internal cell truncated"));
    }
    let klen = u16::from_le_bytes(cell[..2].try_into().unwrap()) as usize;
    if cell.len() != 2 + klen + 4 {
        return Err(corrupt("internal cell malformed"));
    }
    Ok((
        &cell[2..2 + klen],
        u32::from_le_bytes(cell[2 + klen..].try_into().unwrap()),
    ))
}

fn cell_key(cell: &[u8], leaf: bool) -> Result<&[u8], StorageError> {
    if leaf {
        parse_leaf_cell(cell).map(|(k, _)| k)
    } else {
        parse_internal_cell(cell).map(|(k, _)| k)
    }
}

fn decode_cell_key(cell: &[u8], leaf: bool) -> Result<Key, StorageError> {
    codec::decode_tuple(cell_key(cell, leaf)?)
}

/// Binary search over a node's cells: `Ok(i)` = exact match at `i`,
/// `Err(i)` = first cell whose key is greater than `target` (insertion
/// point).
fn search(cells: &[Vec<u8>], target: &Key, leaf: bool) -> Result<Result<usize, usize>, StorageError> {
    let mut lo = 0usize;
    let mut hi = cells.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        match decode_cell_key(&cells[mid], leaf)?.cmp(target) {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => return Ok(Ok(mid)),
        }
    }
    Ok(Err(lo))
}

fn is_leaf(page: &Page) -> Result<bool, StorageError> {
    match page.page_type()? {
        PageType::Leaf => Ok(true),
        PageType::Internal => Ok(false),
        t => Err(corrupt(format!("expected B+-tree page, found {t:?}"))),
    }
}

fn payload_bytes(cells: &[Vec<u8>]) -> usize {
    cells.iter().map(Vec::len).sum()
}

/// Under a quarter page of payload: merge candidate.
fn underfull(cells: &[Vec<u8>]) -> bool {
    payload_bytes(cells) < DISK_PAGE_SIZE / 4
}

fn write_leaf(
    p: &mut Pager,
    no: u32,
    cells: &[Vec<u8>],
    next: u32,
) -> Result<(), StorageError> {
    let mut page = Page::new(PageType::Leaf);
    page.set_cells(cells);
    page.set_next_page(next);
    p.write_page(no, page)
}

fn write_internal(
    p: &mut Pager,
    no: u32,
    cells: &[Vec<u8>],
    aux: u32,
) -> Result<(), StorageError> {
    debug_assert!(aux != 0, "internal node must have a rightmost child");
    let mut page = Page::new(PageType::Internal);
    page.set_cells(cells);
    page.set_aux(aux);
    p.write_page(no, page)
}

/// Splits `cells` at roughly half the payload bytes; both halves non-empty.
fn split_point(cells: &[Vec<u8>]) -> usize {
    let total = payload_bytes(cells);
    let mut acc = 0usize;
    for (i, c) in cells.iter().enumerate() {
        acc += c.len();
        if acc * 2 >= total {
            return (i + 1).min(cells.len() - 1).max(1);
        }
    }
    cells.len() / 2
}

// --------------------------------------------------------------- interface

/// Creates an empty tree; returns its root page.
pub fn create(p: &mut Pager) -> Result<u32, StorageError> {
    let no = p.allocate_page()?;
    write_leaf(p, no, &[], 0)?;
    Ok(no)
}

enum Ins {
    Done,
    Split { sep: Vec<u8>, right: u32 },
}

/// Inserts (or replaces) `key → val`; returns the possibly-new root.
pub fn insert(
    p: &mut Pager,
    root: u32,
    key: &Key,
    val: &[u8],
) -> Result<u32, StorageError> {
    let key_enc = codec::encode_tuple(key);
    let cell = leaf_cell(&key_enc, val);
    if !cells_fit(std::slice::from_ref(&cell)) {
        return Err(StorageError::Io(format!(
            "record of {} bytes exceeds page capacity",
            cell.len()
        )));
    }
    match insert_rec(p, root, key, &cell)? {
        Ins::Done => Ok(root),
        Ins::Split { sep, right } => {
            let new_root = p.allocate_page()?;
            write_internal(p, new_root, &[internal_cell(&sep, root)], right)?;
            Ok(new_root)
        }
    }
}

fn insert_rec(
    p: &mut Pager,
    no: u32,
    key: &Key,
    new_cell: &[u8],
) -> Result<Ins, StorageError> {
    let mut io = IoStats::new();
    let page = p.read_page(no, &mut io)?;
    let mut cells = page.cells();
    if is_leaf(&page)? {
        let next = page.next_page();
        match search(&cells, key, true)? {
            Ok(i) => cells[i] = new_cell.to_vec(),
            Err(i) => cells.insert(i, new_cell.to_vec()),
        }
        if cells_fit(&cells) {
            write_leaf(p, no, &cells, next)?;
            return Ok(Ins::Done);
        }
        let at = split_point(&cells);
        let right_cells: Vec<Vec<u8>> = cells.split_off(at);
        let right = p.allocate_page()?;
        write_leaf(p, right, &right_cells, next)?;
        write_leaf(p, no, &cells, right)?;
        let sep = cell_key(cells.last().expect("left half non-empty"), true)?.to_vec();
        return Ok(Ins::Split { sep, right });
    }

    let aux = page.aux();
    let slot = match search(&cells, key, false)? {
        Ok(i) => i,
        Err(i) => i,
    };
    let (child, child_is_aux) = if slot < cells.len() {
        (parse_internal_cell(&cells[slot])?.1, false)
    } else {
        (aux, true)
    };
    let Ins::Split { sep, right } = insert_rec(p, child, key, new_cell)? else {
        return Ok(Ins::Done);
    };
    // `child` kept the low half (keys <= sep); `right` holds the rest of
    // child's old range.
    let mut aux = aux;
    if child_is_aux {
        cells.push(internal_cell(&sep, child));
        aux = right;
    } else {
        let (old_key, _) = parse_internal_cell(&cells[slot])?;
        let old_key = old_key.to_vec();
        cells[slot] = internal_cell(&sep, child);
        cells.insert(slot + 1, internal_cell(&old_key, right));
    }
    if cells_fit(&cells) {
        write_internal(p, no, &cells, aux)?;
        return Ok(Ins::Done);
    }
    let at = split_point(&cells);
    // Promote the cell at `at - 1`: its child becomes the left node's aux.
    let right_cells: Vec<Vec<u8>> = cells.split_off(at);
    let promoted = cells.pop().expect("left half non-empty");
    let (sep, left_aux) = parse_internal_cell(&promoted)?;
    let (sep, left_aux) = (sep.to_vec(), left_aux);
    let right_no = p.allocate_page()?;
    write_internal(p, right_no, &right_cells, aux)?;
    write_internal(p, no, &cells, left_aux)?;
    Ok(Ins::Split {
        sep,
        right: right_no,
    })
}

/// Removes `key`; returns `(possibly-new root, removed)`.
pub fn remove(p: &mut Pager, root: u32, key: &Key) -> Result<(u32, bool), StorageError> {
    let (removed, _) = remove_rec(p, root, key)?;
    if !removed {
        return Ok((root, false));
    }
    // Root collapse: an internal root reduced to a single (aux) child.
    let mut io = IoStats::new();
    let page = p.read_page(root, &mut io)?;
    if !is_leaf(&page)? && page.nslots() == 0 {
        let new_root = page.aux();
        p.free_page(root)?;
        return Ok((new_root, true));
    }
    Ok((root, true))
}

fn remove_rec(
    p: &mut Pager,
    no: u32,
    key: &Key,
) -> Result<(bool, bool), StorageError> {
    let mut io = IoStats::new();
    let page = p.read_page(no, &mut io)?;
    let mut cells = page.cells();
    if is_leaf(&page)? {
        let Ok(i) = search(&cells, key, true)? else {
            return Ok((false, false));
        };
        cells.remove(i);
        let next = page.next_page();
        write_leaf(p, no, &cells, next)?;
        return Ok((true, underfull(&cells)));
    }

    let aux = page.aux();
    let slot = match search(&cells, key, false)? {
        Ok(i) => i,
        Err(i) => i,
    };
    let child = if slot < cells.len() {
        parse_internal_cell(&cells[slot])?.1
    } else {
        aux
    };
    let (removed, child_underflow) = remove_rec(p, child, key)?;
    if !removed {
        return Ok((false, false));
    }
    if !child_underflow {
        return Ok((true, false));
    }
    // Merge the underfull child with its right sibling under this node
    // (or, if it is the rightmost, merge its left sibling into it).
    let j = slot.min(cells.len().saturating_sub(1));
    if cells.is_empty() {
        // Single-child node (aux only): nothing to merge with here; let
        // the parent handle it.
        return Ok((true, true));
    }
    let left_no = parse_internal_cell(&cells[j])?.1;
    let (right_no, right_is_aux) = if j + 1 < cells.len() {
        (parse_internal_cell(&cells[j + 1])?.1, false)
    } else {
        (aux, true)
    };
    let merged = try_merge(p, left_no, right_no, &cells[j])?;
    let mut aux = aux;
    if merged {
        if right_is_aux {
            cells.remove(j);
            aux = left_no;
        } else {
            let (up_key, _) = parse_internal_cell(&cells[j + 1])?;
            let up_key = up_key.to_vec();
            cells.remove(j + 1);
            cells[j] = internal_cell(&up_key, left_no);
        }
    }
    write_internal(p, no, &cells, aux)?;
    Ok((true, underfull(&cells)))
}

/// Merges `right` into `left` if the combined payload fits; frees `right`.
/// `sep_cell` is the parent cell separating them (needed to rejoin two
/// internal nodes). Returns whether the merge happened.
fn try_merge(
    p: &mut Pager,
    left_no: u32,
    right_no: u32,
    sep_cell: &[u8],
) -> Result<bool, StorageError> {
    let mut io = IoStats::new();
    let left = p.read_page(left_no, &mut io)?;
    let right = p.read_page(right_no, &mut io)?;
    let left_leaf = is_leaf(&left)?;
    if left_leaf != is_leaf(&right)? {
        return Err(corrupt("sibling height mismatch"));
    }
    let mut cells = left.cells();
    if left_leaf {
        cells.extend(right.cells());
        if !cells_fit(&cells) {
            return Ok(false);
        }
        write_leaf(p, left_no, &cells, right.next_page())?;
    } else {
        let (sep, _) = parse_internal_cell(sep_cell)?;
        cells.push(internal_cell(sep, left.aux()));
        cells.extend(right.cells());
        if !cells_fit(&cells) {
            return Ok(false);
        }
        write_internal(p, left_no, &cells, right.aux())?;
    }
    p.free_page(right_no)?;
    Ok(true)
}

/// Point lookup. Charges one page per level touched (plus faults).
pub fn lookup(
    p: &mut Pager,
    root: u32,
    key: &Key,
    io: &mut IoStats,
) -> Result<Option<Vec<u8>>, StorageError> {
    let mut no = root;
    loop {
        let page = p.read_page(no, io)?;
        let cells = page.cells();
        if is_leaf(&page)? {
            return Ok(match search(&cells, key, true)? {
                Ok(i) => Some(parse_leaf_cell(&cells[i])?.1.to_vec()),
                Err(_) => None,
            });
        }
        let slot = match search(&cells, key, false)? {
            Ok(i) => i,
            Err(i) => i,
        };
        no = if slot < cells.len() {
            parse_internal_cell(&cells[slot])?.1
        } else {
            page.aux()
        };
    }
}

fn bound_allows_lower(key: &Key, lower: &Bound<&Key>) -> bool {
    match lower {
        Bound::Included(l) => key >= l,
        Bound::Excluded(l) => key > l,
        Bound::Unbounded => true,
    }
}

fn bound_allows_upper(key: &Key, upper: &Bound<&Key>) -> bool {
    match upper {
        Bound::Included(u) => key <= u,
        Bound::Excluded(u) => key < u,
        Bound::Unbounded => true,
    }
}

/// Ordered range scan: calls `visit(key, value)` for every entry within the
/// bounds, charging `io` one page per node touched. Returns the number of
/// entries visited.
pub fn range<F: FnMut(Key, &[u8])>(
    p: &mut Pager,
    root: u32,
    lower: Bound<&Key>,
    upper: Bound<&Key>,
    io: &mut IoStats,
    mut visit: F,
) -> Result<u64, StorageError> {
    // Descend to the leaf that may contain the lower bound.
    let probe: Option<&Key> = match &lower {
        Bound::Included(k) | Bound::Excluded(k) => Some(k),
        Bound::Unbounded => None,
    };
    let mut no = root;
    loop {
        let page = p.read_page(no, io)?;
        let cells = page.cells();
        if is_leaf(&page)? {
            break;
        }
        let slot = match probe {
            Some(k) => match search(&cells, k, false)? {
                Ok(i) => i,
                Err(i) => i,
            },
            None => 0,
        };
        no = if slot < cells.len() {
            parse_internal_cell(&cells[slot])?.1
        } else {
            page.aux()
        };
    }
    // Walk the leaf chain.
    let mut visited = 0u64;
    loop {
        let page = if visited == 0 && no != 0 {
            // First leaf already charged by the descent loop's last read;
            // re-read from pool (hit) to keep borrowck simple but do not
            // double-charge the logical page.
            let mut scratch = IoStats::new();
            p.read_page(no, &mut scratch)?
        } else if no != 0 {
            p.read_page(no, io)?
        } else {
            return Ok(visited);
        };
        for cell in page.cells() {
            let (k, v) = parse_leaf_cell(&cell)?;
            let key = codec::decode_tuple(k)?;
            if !bound_allows_lower(&key, &lower) {
                continue;
            }
            if !bound_allows_upper(&key, &upper) {
                return Ok(visited);
            }
            visit(key, v);
            visited += 1;
        }
        no = page.next_page();
        if no == 0 {
            return Ok(visited);
        }
    }
}

/// Frees every page of the tree (DROP INDEX).
pub fn free(p: &mut Pager, root: u32) -> Result<(), StorageError> {
    let mut io = IoStats::new();
    let page = p.read_page(root, &mut io)?;
    if !is_leaf(&page)? {
        for cell in page.cells() {
            let (_, child) = parse_internal_cell(&cell)?;
            free(p, child)?;
        }
        free(p, page.aux())?;
    }
    p.free_page(root)
}

/// Height of the tree in levels (1 = a lone leaf).
pub fn height(p: &mut Pager, root: u32) -> Result<u32, StorageError> {
    let mut io = IoStats::new();
    let mut no = root;
    let mut h = 1;
    loop {
        let page = p.read_page(no, &mut io)?;
        if is_leaf(&page)? {
            return Ok(h);
        }
        let cells = page.cells();
        no = if cells.is_empty() {
            page.aux()
        } else {
            parse_internal_cell(&cells[0])?.1
        };
        h += 1;
    }
}

/// Total entries in the tree (consistency audits).
pub fn count(p: &mut Pager, root: u32) -> Result<u64, StorageError> {
    let mut io = IoStats::new();
    range(p, root, Bound::Unbounded, Bound::Unbounded, &mut io, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PagerOptions;
    use crate::value::Value;
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aim-btree-test-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pager(name: &str) -> Pager {
        Pager::open(&tmp(name), PagerOptions::default()).unwrap()
    }

    fn k(i: i64) -> Key {
        vec![Value::Int(i), Value::Str(format!("key-{i:06}"))]
    }

    fn collect_all(p: &mut Pager, root: u32) -> Vec<(Key, Vec<u8>)> {
        let mut out = Vec::new();
        let mut io = IoStats::new();
        range(p, root, Bound::Unbounded, Bound::Unbounded, &mut io, |k, v| {
            out.push((k, v.to_vec()))
        })
        .unwrap();
        out
    }

    #[test]
    fn insert_lookup_small() {
        let mut p = pager("small");
        let mut root = create(&mut p).unwrap();
        for i in [5, 1, 9, 3, 7] {
            root = insert(&mut p, root, &k(i), &i.to_le_bytes()).unwrap();
        }
        p.commit().unwrap();
        let mut io = IoStats::new();
        for i in [1, 3, 5, 7, 9] {
            let v = lookup(&mut p, root, &k(i), &mut io).unwrap().unwrap();
            assert_eq!(v, i.to_le_bytes());
        }
        assert!(lookup(&mut p, root, &k(2), &mut io).unwrap().is_none());
        let all = collect_all(&mut p, root);
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted order");
    }

    #[test]
    fn replace_existing_key() {
        let mut p = pager("replace");
        let mut root = create(&mut p).unwrap();
        root = insert(&mut p, root, &k(1), b"old").unwrap();
        root = insert(&mut p, root, &k(1), b"new").unwrap();
        p.commit().unwrap();
        let mut io = IoStats::new();
        assert_eq!(lookup(&mut p, root, &k(1), &mut io).unwrap().unwrap(), b"new");
        assert_eq!(count(&mut p, root).unwrap(), 1);
    }

    #[test]
    fn grows_past_one_page_and_stays_sorted() {
        let mut p = pager("grow");
        let mut root = create(&mut p).unwrap();
        let n = 3000i64;
        // Insert in a scrambled deterministic order.
        let mut order: Vec<i64> = (0..n).collect();
        for i in 0..order.len() {
            let j = ((i as u64).wrapping_mul(0x9e37_79b9) % n as u64) as usize;
            order.swap(i, j);
        }
        for &i in &order {
            root = insert(&mut p, root, &k(i), &i.to_le_bytes()).unwrap();
        }
        p.commit().unwrap();
        assert!(height(&mut p, root).unwrap() >= 2, "3000 entries must split");
        let all = collect_all(&mut p, root);
        assert_eq!(all.len(), n as usize);
        for (i, (key, val)) in all.iter().enumerate() {
            assert_eq!(key, &k(i as i64));
            assert_eq!(val, &(i as i64).to_le_bytes());
        }
    }

    #[test]
    fn range_scan_bounds() {
        let mut p = pager("range");
        let mut root = create(&mut p).unwrap();
        for i in 0..2000 {
            root = insert(&mut p, root, &k(i), b"").unwrap();
        }
        p.commit().unwrap();
        let lo = k(100);
        let hi = k(200);
        let mut io = IoStats::new();
        let mut got = Vec::new();
        range(
            &mut p,
            root,
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            &mut io,
            |key, _| got.push(key),
        )
        .unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], k(100));
        assert_eq!(got[99], k(199));
        assert!(
            io.pages_read < 20,
            "bounded scan must not touch the whole tree: {}",
            io.pages_read
        );
    }

    #[test]
    fn delete_shrinks_and_merges() {
        let mut p = pager("shrink");
        let mut root = create(&mut p).unwrap();
        let n = 3000i64;
        for i in 0..n {
            root = insert(&mut p, root, &k(i), &i.to_le_bytes()).unwrap();
        }
        p.commit().unwrap();
        let grown_height = height(&mut p, root).unwrap();
        assert!(grown_height >= 2);
        // Delete all but a handful.
        for i in 0..n - 5 {
            let (new_root, removed) = remove(&mut p, root, &k(i)).unwrap();
            assert!(removed, "key {i} present");
            root = new_root;
        }
        p.commit().unwrap();
        assert_eq!(count(&mut p, root).unwrap(), 5);
        assert_eq!(
            height(&mut p, root).unwrap(),
            1,
            "root must collapse back to a lone leaf"
        );
        let all = collect_all(&mut p, root);
        assert_eq!(all[0].0, k(n - 5));
        // Removing a missing key reports false.
        let (_, removed) = remove(&mut p, root, &k(0)).unwrap();
        assert!(!removed);
    }

    #[test]
    fn random_ops_match_btreemap_mirror() {
        let mut p = pager("mirror");
        let mut root = create(&mut p).unwrap();
        let mut mirror: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
        let mut state = 0x1234_5678_u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000 {
            let key = k((rand() % 500) as i64);
            match rand() % 3 {
                0 | 1 => {
                    let val = format!("v{step}").into_bytes();
                    root = insert(&mut p, root, &key, &val).unwrap();
                    mirror.insert(key, val);
                }
                _ => {
                    let (new_root, removed) = remove(&mut p, root, &key).unwrap();
                    root = new_root;
                    assert_eq!(removed, mirror.remove(&key).is_some());
                }
            }
            if step % 512 == 0 {
                p.commit().unwrap();
            }
        }
        p.commit().unwrap();
        let all = collect_all(&mut p, root);
        let expect: Vec<(Key, Vec<u8>)> =
            mirror.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn free_returns_pages_to_freelist() {
        let mut p = pager("free");
        let mut root = create(&mut p).unwrap();
        for i in 0..2000 {
            root = insert(&mut p, root, &k(i), b"x").unwrap();
        }
        p.commit().unwrap();
        let before = p.meta().page_count;
        free(&mut p, root).unwrap();
        p.commit().unwrap();
        assert_eq!(p.meta().page_count, before, "freeing shrinks nothing yet");
        // Building a new tree of the same size reuses the freed pages.
        let mut root2 = create(&mut p).unwrap();
        for i in 0..2000 {
            root2 = insert(&mut p, root2, &k(i), b"x").unwrap();
        }
        p.commit().unwrap();
        assert_eq!(
            p.meta().page_count,
            before,
            "rebuilt tree must reuse freed pages, not grow the file"
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = pager("oversize");
        let root = create(&mut p).unwrap();
        let huge = vec![0u8; DISK_PAGE_SIZE];
        let err = insert(&mut p, root, &k(1), &huge).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err}");
    }

    #[test]
    fn int_float_collation_matches_memory() {
        let mut p = pager("collation");
        let mut root = create(&mut p).unwrap();
        root = insert(&mut p, root, &vec![Value::Int(3)], b"int").unwrap();
        // Float(3.0) compares equal to Int(3): this must *replace*.
        root = insert(&mut p, root, &vec![Value::Float(3.0)], b"float").unwrap();
        p.commit().unwrap();
        assert_eq!(count(&mut p, root).unwrap(), 1);
        let mut io = IoStats::new();
        let v = lookup(&mut p, root, &vec![Value::Int(3)], &mut io)
            .unwrap()
            .unwrap();
        assert_eq!(v, b"float");
    }
}
