//! Binary (de)serialization for the disk backend.
//!
//! Everything the pager stores inside a page cell — row tuples, index key
//! tuples, the catalog blob — goes through this module. The encoding is a
//! simple tagged format, *not* an order-preserving one: the paged B+-tree
//! compares keys by decoding them back to [`Value`] tuples and using the
//! engine's total order, so `Int(3)` and `Float(3.0)` collate identically
//! on disk and in memory.

use crate::error::StorageError;
use crate::schema::{ColumnDef, ColumnType, IndexDef, TableSchema};
use crate::value::{Row, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_MAXKEY: u8 = 5;

fn corrupt(detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        detail: detail.into(),
    }
}

// ------------------------------------------------------------------ writer

/// Appends a single value to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::MaxKey => out.push(TAG_MAXKEY),
    }
}

/// Encodes a key/row tuple: `u16` value count followed by tagged values.
pub fn encode_tuple(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + vals.len() * 9);
    out.extend_from_slice(&(vals.len() as u16).to_le_bytes());
    for v in vals {
        encode_value(v, &mut out);
    }
    out
}

// ------------------------------------------------------------------ reader

/// A bounds-checked little-endian reader over a byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated record: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, StorageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn value(&mut self) -> Result<Value, StorageError> {
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_STR => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| corrupt(format!("non-UTF-8 string value: {e}")))?;
                Ok(Value::Str(s.to_string()))
            }
            TAG_MAXKEY => Ok(Value::MaxKey),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    pub fn string(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|e| corrupt(format!("non-UTF-8 catalog string: {e}")))
    }
}

/// Decodes a key/row tuple written by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> Result<Row, StorageError> {
    let mut c = Cursor::new(bytes);
    let n = c.u16()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.value()?);
    }
    Ok(out)
}

fn push_string(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ----------------------------------------------------------------- catalog

/// On-disk description of one secondary index: its definition plus the
/// page number of its B+-tree root.
#[derive(Debug, Clone, PartialEq)]
pub struct CatIndex {
    pub def: IndexDef,
    pub root: u32,
}

/// On-disk description of one table: schema plus the page numbers anchoring
/// its heap chain and primary-key B+-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CatTable {
    pub schema: TableSchema,
    pub heap_first: u32,
    pub heap_last: u32,
    pub pk_root: u32,
    pub indexes: Vec<CatIndex>,
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Str => 2,
        ColumnType::Bool => 3,
    }
}

fn column_type_from_tag(tag: u8) -> Result<ColumnType, StorageError> {
    match tag {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Float),
        2 => Ok(ColumnType::Str),
        3 => Ok(ColumnType::Bool),
        t => Err(corrupt(format!("unknown column type tag {t}"))),
    }
}

/// Serializes the full catalog (all tables) into one blob.
pub fn encode_catalog(tables: &[CatTable]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for t in tables {
        push_string(&t.schema.name, &mut out);
        out.extend_from_slice(&(t.schema.columns.len() as u32).to_le_bytes());
        for c in &t.schema.columns {
            push_string(&c.name, &mut out);
            out.push(column_type_tag(c.ty));
            out.extend_from_slice(&c.avg_width.to_le_bytes());
        }
        out.extend_from_slice(&(t.schema.primary_key.len() as u32).to_le_bytes());
        for &p in &t.schema.primary_key {
            out.extend_from_slice(&(p as u32).to_le_bytes());
        }
        out.extend_from_slice(&t.heap_first.to_le_bytes());
        out.extend_from_slice(&t.heap_last.to_le_bytes());
        out.extend_from_slice(&t.pk_root.to_le_bytes());
        out.extend_from_slice(&(t.indexes.len() as u32).to_le_bytes());
        for ix in &t.indexes {
            push_string(&ix.def.name, &mut out);
            push_string(&ix.def.table, &mut out);
            out.extend_from_slice(&(ix.def.columns.len() as u32).to_le_bytes());
            for c in &ix.def.columns {
                push_string(c, &mut out);
            }
            out.push(u8::from(ix.def.unique));
            out.extend_from_slice(&ix.root.to_le_bytes());
        }
    }
    out
}

/// Decodes a catalog blob written by [`encode_catalog`].
pub fn decode_catalog(bytes: &[u8]) -> Result<Vec<CatTable>, StorageError> {
    let mut c = Cursor::new(bytes);
    let ntables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = c.string()?;
        let ncols = c.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = c.string()?;
            let ty = column_type_from_tag(c.u8()?)?;
            let avg_width = c.u32()?;
            columns.push(ColumnDef {
                name: cname,
                ty,
                avg_width,
            });
        }
        let npk = c.u32()? as usize;
        let mut primary_key = Vec::with_capacity(npk);
        for _ in 0..npk {
            let p = c.u32()? as usize;
            if p >= columns.len() {
                return Err(corrupt(format!(
                    "catalog: pk position {p} out of range for table {name}"
                )));
            }
            primary_key.push(p);
        }
        let heap_first = c.u32()?;
        let heap_last = c.u32()?;
        let pk_root = c.u32()?;
        let nix = c.u32()? as usize;
        let mut indexes = Vec::with_capacity(nix);
        for _ in 0..nix {
            let iname = c.string()?;
            let itable = c.string()?;
            let nc = c.u32()? as usize;
            let mut cols = Vec::with_capacity(nc);
            for _ in 0..nc {
                cols.push(c.string()?);
            }
            let unique = c.u8()? != 0;
            let root = c.u32()?;
            indexes.push(CatIndex {
                def: IndexDef {
                    name: iname,
                    table: itable,
                    columns: cols,
                    unique,
                },
                root,
            });
        }
        tables.push(CatTable {
            schema: TableSchema {
                name,
                columns,
                primary_key,
            },
            heap_first,
            heap_last,
            pk_root,
            indexes,
        });
    }
    Ok(tables)
}

/// Compares two encoded key tuples by decoding and using the engine's
/// total [`Value`] order (the encoding itself is not order-preserving).
pub fn compare_encoded_keys(a: &[u8], b: &[u8]) -> Result<std::cmp::Ordering, StorageError> {
    Ok(decode_tuple(a)?.cmp(&decode_tuple(b)?))
}

/// Encodes a row id `(page, slot)` as the 8-byte payload stored in primary
/// key B+-tree leaves.
pub fn encode_rowid(page: u32, slot: u16) -> [u8; 8] {
    (u64::from(page) << 16 | u64::from(slot)).to_le_bytes()
}

/// Inverse of [`encode_rowid`].
pub fn decode_rowid(bytes: &[u8]) -> Result<(u32, u16), StorageError> {
    if bytes.len() != 8 {
        return Err(corrupt(format!("rowid payload of {} bytes", bytes.len())));
    }
    let v = u64::from_le_bytes(bytes.try_into().unwrap());
    Ok(((v >> 16) as u32, (v & 0xffff) as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: Vec<Value>) {
        let enc = encode_tuple(&vals);
        let dec = decode_tuple(&enc).unwrap();
        assert_eq!(dec, vals);
    }

    #[test]
    fn tuple_roundtrip_all_variants() {
        roundtrip(vec![]);
        roundtrip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Str("héllo".into()),
            Value::Str(String::new()),
            Value::MaxKey,
        ]);
    }

    #[test]
    fn float_roundtrip_is_bit_identical() {
        for f in [0.0, -0.0, f64::NAN, f64::INFINITY, 1e-300] {
            let enc = encode_tuple(&[Value::Float(f)]);
            match &decode_tuple(&enc).unwrap()[0] {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_tuple_is_corrupt_not_panic() {
        let enc = encode_tuple(&[Value::Str("hello world".into())]);
        for cut in 0..enc.len() {
            match decode_tuple(&enc[..cut]) {
                Ok(v) => assert_ne!(v, vec![Value::Str("hello world".into())]),
                Err(StorageError::Corrupt { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }

    #[test]
    fn encoded_compare_matches_value_order() {
        let pairs = [
            (vec![Value::Int(3)], vec![Value::Float(3.0)]),
            (vec![Value::Int(1)], vec![Value::Int(2)]),
            (vec![Value::Null], vec![Value::Bool(false)]),
            (
                vec![Value::Int(1), Value::Str("b".into())],
                vec![Value::Int(1), Value::MaxKey],
            ),
        ];
        for (a, b) in pairs {
            let ea = encode_tuple(&a);
            let eb = encode_tuple(&b);
            assert_eq!(compare_encoded_keys(&ea, &eb).unwrap(), a.cmp(&b));
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let schema = TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("who", ColumnType::Str).with_width(40),
                ColumnDef::new("paid", ColumnType::Bool),
                ColumnDef::new("amt", ColumnType::Float),
            ],
            &["id"],
        )
        .unwrap();
        let mut def = IndexDef::new("ix_who", "orders", vec!["who".into()]);
        def.unique = true;
        let cat = vec![CatTable {
            schema,
            heap_first: 3,
            heap_last: 9,
            pk_root: 4,
            indexes: vec![CatIndex { def, root: 17 }],
        }];
        let enc = encode_catalog(&cat);
        assert_eq!(decode_catalog(&enc).unwrap(), cat);
        assert!(decode_catalog(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn rowid_roundtrip() {
        let enc = encode_rowid(0xdead_beef, 0x1234);
        assert_eq!(decode_rowid(&enc).unwrap(), (0xdead_beef, 0x1234));
        assert!(decode_rowid(&enc[..7]).is_err());
    }
}
