//! The database: a catalog of tables with their indexes and statistics.

use crate::backend::{
    memory_backend, BackendKind, DiskBackend, StorageBackend, StorageCounters,
};
use crate::error::StorageError;
use crate::io::IoStats;
use crate::pager::PagerOptions;
use crate::schema::{IndexDef, TableSchema};
use crate::stats::{analyze, TableStats, DEFAULT_BUCKETS};
use crate::table::Table;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of process-unique database instance identifiers (cache keying).
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

fn next_db_id() -> u64 {
    NEXT_DB_ID.fetch_add(1, Ordering::Relaxed)
}

/// An in-memory database instance.
///
/// `Database` is `Clone`: cloning produces the logical copy that the paper's
/// MyShadow framework provides (§VII-B) — a test instance on which candidate
/// indexes are materialized and traffic replayed without touching
/// "production". A clone receives a fresh [`Database::instance_id`], so
/// what-if cost caches keyed by `(instance_id, stats_epoch)` never confuse
/// the clone with its source.
#[derive(Debug)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
    /// Process-unique identity of this instance (fresh on clone).
    id: u64,
    /// Version of (data, schema, index set, statistics): bumped by any
    /// mutable access and by re-analysis that changed statistics. What-if
    /// cost caches key on this to invalidate on data or stats drift.
    epoch: u64,
    /// True when data/schema may have changed since the last full
    /// [`Database::analyze_all`] — the ANALYZE-worth-running signal.
    dirty: bool,
    /// Durability backend shared by every table. [`memory_backend`] for
    /// pure in-memory instances; a [`DiskBackend`] for pager-backed ones.
    backend: Arc<dyn StorageBackend>,
}

impl Default for Database {
    fn default() -> Self {
        Self {
            tables: BTreeMap::new(),
            stats: BTreeMap::new(),
            id: next_db_id(),
            epoch: 0,
            dirty: false,
            backend: memory_backend(),
        }
    }
}

impl Clone for Database {
    /// Clones always land on the in-memory backend, whatever the source
    /// runs on: a clone is the paper's MyShadow *test* instance — candidate
    /// indexes are materialized and traffic replayed on it, and none of
    /// that experimentation may reach the production WAL or data files.
    fn clone(&self) -> Self {
        let mut tables = self.tables.clone();
        for table in tables.values_mut() {
            table.detach_to_memory();
        }
        Self {
            tables,
            stats: self.stats.clone(),
            id: next_db_id(),
            epoch: self.epoch,
            dirty: self.dirty,
            backend: memory_backend(),
        }
    }
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or creates) a disk-backed database rooted at `dir`.
    ///
    /// Runs WAL recovery, loads every table's heap and index trees into the
    /// in-memory working set, and re-analyzes statistics. Subsequent DML and
    /// index DDL are persisted through the pager before they become visible
    /// in memory, so a crash (or [`Database::simulate_crash`]) loses at most
    /// the in-flight statement.
    pub fn open_disk(dir: &Path, opts: PagerOptions) -> Result<Database, StorageError> {
        let (backend, loaded) = DiskBackend::open(dir, opts)?;
        let backend: Arc<dyn StorageBackend> = backend;
        let mut tables = BTreeMap::new();
        for lt in loaded {
            let name = lt.schema.name.clone();
            let table = Table::load(lt.schema, lt.rows, lt.indexes, backend.clone())?;
            tables.insert(name, table);
        }
        let mut db = Database {
            tables,
            stats: BTreeMap::new(),
            id: next_db_id(),
            epoch: 0,
            dirty: true,
            backend,
        };
        db.analyze_all();
        Ok(db)
    }

    /// Which backend this instance runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Forces a checkpoint: flushes dirty pages, fsyncs the data file and
    /// truncates the WAL. No-op on the in-memory backend.
    pub fn checkpoint(&self) -> Result<(), StorageError> {
        self.backend.checkpoint()
    }

    /// Drops all buffered state without flushing — everything not yet
    /// committed to the WAL is lost, exactly as in a process kill. The
    /// instance must be re-opened via [`Database::open_disk`] afterwards.
    /// No-op on the in-memory backend.
    pub fn simulate_crash(&self) {
        self.backend.simulate_crash();
    }

    /// Cumulative buffer-pool / WAL / pager counters for this instance.
    /// All-zero on the in-memory backend.
    pub fn storage_counters(&self) -> StorageCounters {
        self.backend.counters()
    }

    /// Process-unique identity of this instance. Clones get a fresh id.
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// Current stats epoch: changes whenever data, schema, the index set or
    /// the statistics may have changed. Cached what-if costs computed under
    /// an older epoch are stale.
    pub fn stats_epoch(&self) -> u64 {
        self.epoch
    }

    /// True when data or schema may have drifted from the installed
    /// statistics — i.e. a mutable table handle was taken since the last
    /// [`Database::analyze_all`]. Tuning passes use this to skip redundant
    /// ANALYZE work (and the what-if cache churn it can cause).
    pub fn stats_dirty(&self) -> bool {
        self.dirty
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        if self.tables.contains_key(&schema.name) {
            return Err(StorageError::DuplicateTable(schema.name));
        }
        self.backend.persist_create_table(&schema)?;
        self.epoch += 1;
        self.dirty = true;
        self.tables.insert(
            schema.name.clone(),
            Table::new(schema).with_backend(self.backend.clone()),
        );
        Ok(())
    }

    /// Immutable table lookup.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup. Invalidate statistics after bulk changes via
    /// [`Database::analyze_table`].
    ///
    /// Handing out `&mut Table` conservatively bumps the stats epoch: every
    /// data mutation flows through here, and a spurious bump only costs a
    /// cache miss, never a stale cost.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        self.epoch += 1;
        self.dirty = true;
        Ok(table)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Creates and populates a secondary index. The build is atomic: it
    /// either installs a fully populated index or fails before any table
    /// state changes (the fault-injection gate sits before the build, so
    /// an injected failure can never leave a half-built index).
    pub fn create_index(&mut self, def: IndexDef, io: &mut IoStats) -> Result<(), StorageError> {
        if let Some(crate::fault::FaultKind::Fail) = crate::fault::hit("storage.create_index") {
            return Err(StorageError::FaultInjected {
                site: "storage.create_index".to_string(),
            });
        }
        let table = self.table_mut(&def.table.clone())?;
        table.create_index(def, io)
    }

    /// Clones the database, modelling the paper's MyShadow test-environment
    /// provisioning — which, unlike in-process [`Clone`], can fail (no
    /// capacity, provider outage). Fault plans arm `storage.clone` to
    /// exercise that path; without an armed fault this is `self.clone()`.
    pub fn try_clone(&self) -> Result<Database, StorageError> {
        if let Some(crate::fault::FaultKind::Fail) = crate::fault::hit("storage.clone") {
            return Err(StorageError::FaultInjected {
                site: "storage.clone".to_string(),
            });
        }
        Ok(self.clone())
    }

    /// Drops a secondary index by name.
    pub fn drop_index(&mut self, table: &str, index: &str) -> Result<IndexDef, StorageError> {
        self.table_mut(table)?.drop_index(index)
    }

    /// All secondary index definitions across all tables.
    pub fn all_indexes(&self) -> Vec<IndexDef> {
        self.tables
            .values()
            .flat_map(|t| t.indexes().map(|ix| ix.def().clone()))
            .collect()
    }

    /// Total size of all secondary indexes in bytes — the quantity checked
    /// against the storage budget `B` of the tuning problem.
    pub fn total_secondary_index_bytes(&self) -> u64 {
        self.tables.values().map(Table::secondary_index_bytes).sum()
    }

    /// Applies an armed `storage.analyze` stats-corruption fault: every
    /// column collapses to NDV 1 over a wildly inflated row count — the
    /// shape of a catastrophically stale or mangled ANALYZE result.
    fn maybe_corrupt(stats: &mut TableStats) {
        if crate::fault::hit("storage.analyze") != Some(crate::fault::FaultKind::CorruptStats) {
            return;
        }
        stats.row_count = stats.row_count.saturating_mul(1000).max(1_000_000);
        for col in stats.columns.values_mut() {
            col.ndv = 1;
            col.row_count = stats.row_count;
        }
    }

    /// Recomputes statistics for one table. Bumps the stats epoch only when
    /// the recomputed statistics actually differ, so re-analysis of
    /// unchanged data keeps what-if cost caches warm.
    pub fn analyze_table(&mut self, name: &str) -> Result<(), StorageError> {
        let mut stats = analyze(self.table(name)?, DEFAULT_BUCKETS);
        Self::maybe_corrupt(&mut stats);
        if self.stats.get(name) != Some(&stats) {
            self.epoch += 1;
            self.stats.insert(name.to_string(), stats);
        }
        Ok(())
    }

    /// Recomputes statistics for every table (same epoch discipline as
    /// [`Database::analyze_table`]) and clears the dirty flag: statistics
    /// are now in sync with the data.
    pub fn analyze_all(&mut self) {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        for name in names {
            let mut stats = analyze(&self.tables[&name], DEFAULT_BUCKETS);
            Self::maybe_corrupt(&mut stats);
            if self.stats.get(&name) != Some(&stats) {
                self.epoch += 1;
                self.stats.insert(name, stats);
            }
        }
        self.dirty = false;
    }

    /// Structural consistency audit, used by chaos tests after fault-laden
    /// tuning runs: every secondary index must cover exactly the rows of
    /// its table (no half-built, stale or orphaned indexes). Returns every
    /// violation found.
    pub fn check_consistency(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for table in self.tables.values() {
            let rows = table.row_count();
            for ix in table.indexes() {
                if ix.len() != rows {
                    violations.push(format!(
                        "index {} on {} holds {} entries for {} rows",
                        ix.def().name,
                        table.schema().name,
                        ix.len(),
                        rows
                    ));
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Statistics for a table; empty default if never analyzed.
    pub fn stats(&self, table: &str) -> Option<&TableStats> {
        self.stats.get(table)
    }

    /// Builds an economical test bed: a clone holding a deterministic
    /// `fraction` sample of every table's rows (secondary indexes are
    /// rebuilt over the sample; statistics re-analyzed). This is the
    /// sampling ability of the paper's MyShadow framework (§VII-B).
    ///
    /// Sampling is per-row and independent, so foreign-key joins thin out
    /// quadratically — callers validating join plans should keep the
    /// fraction moderate.
    pub fn sample(&self, fraction: f64, seed: u64) -> Database {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut out = Database::new();
        for table in self.tables.values() {
            out.create_table(table.schema().clone())
                .expect("fresh database");
            let mut io = crate::io::IoStats::new();
            // Deterministic per-row selection: hash of (seed, table, pk).
            let mut scan_io = crate::io::IoStats::new();
            for row in table.scan_all(&mut scan_io) {
                let pk = table.pk_of(row);
                let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
                for b in table.schema().name.bytes() {
                    h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
                }
                for v in &pk {
                    h = h.wrapping_mul(0x100_0000_01b3)
                        ^ crate::stats::value_sample_hash(v);
                }
                // Finalize (splitmix64): the last XOR above would
                // otherwise leave near-constant float-exponent bits in the
                // high positions.
                h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                h ^= h >> 31;
                // Map to [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < fraction {
                    out.table_mut(&table.schema().name)
                        .expect("just created")
                        .insert(row.clone(), &mut io)
                        .expect("pk unique in source");
                }
            }
            for ix in table.indexes() {
                out.create_index(ix.def().clone(), &mut io)
                    .expect("index valid on same schema");
            }
        }
        out.analyze_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_table() {
        let db = db();
        assert!(db.table("t").is_ok());
        assert!(matches!(
            db.table("missing"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let schema = TableSchema::new(
            "t",
            vec![ColumnDef::new("id", ColumnType::Int)],
            &["id"],
        )
        .unwrap();
        assert!(matches!(
            db.create_table(schema),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn clone_is_independent() {
        let mut db = db();
        let mut io = IoStats::new();
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(10)], &mut io)
            .unwrap();
        let mut clone = db.clone();
        clone
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(2), Value::Int(20)], &mut io)
            .unwrap();
        assert_eq!(db.table("t").unwrap().row_count(), 1);
        assert_eq!(clone.table("t").unwrap().row_count(), 2);
    }

    #[test]
    fn index_budget_accounting() {
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..100 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i * 2)], &mut io)
                .unwrap();
        }
        assert_eq!(db.total_secondary_index_bytes(), 0);
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        assert!(db.total_secondary_index_bytes() > 0);
        assert_eq!(db.all_indexes().len(), 1);
        db.drop_index("t", "ix_a").unwrap();
        assert_eq!(db.total_secondary_index_bytes(), 0);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..4000 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 7)], &mut io)
                .unwrap();
        }
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        let s1 = db.sample(0.25, 99);
        let s2 = db.sample(0.25, 99);
        let n = s1.table("t").unwrap().row_count();
        assert_eq!(n, s2.table("t").unwrap().row_count());
        assert!((700..1300).contains(&n), "sampled {n} of 4000 at 25%");
        // Indexes rebuilt over the sample.
        assert_eq!(s1.table("t").unwrap().index("ix_a").unwrap().len(), n);
        // Statistics re-analyzed.
        assert_eq!(s1.stats("t").unwrap().row_count, n as u64);
        // Different seed, different subset (almost surely).
        let s3 = db.sample(0.25, 7);
        assert_ne!(
            s1.table("t").unwrap().data_bytes(),
            0,
            "sample not empty"
        );
        let _ = s3;
    }

    #[test]
    fn sample_extremes() {
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..100 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i)], &mut io)
                .unwrap();
        }
        assert_eq!(db.sample(0.0, 1).table("t").unwrap().row_count(), 0);
        assert_eq!(db.sample(1.0, 1).table("t").unwrap().row_count(), 100);
    }

    /// Compile-time guard: the advisor fans what-if evaluation out over
    /// `std::thread::scope` workers sharing `&Database`; losing `Send +
    /// Sync` (e.g. by introducing `Rc`/`RefCell` into a table) must fail
    /// this test at compile time, not at the first parallel tuning pass.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Table>();
        assert_send_sync::<TableStats>();
    }

    #[test]
    fn clone_gets_fresh_instance_id() {
        let db = db();
        let clone = db.clone();
        assert_ne!(db.instance_id(), clone.instance_id());
        assert_eq!(db.stats_epoch(), clone.stats_epoch());
    }

    #[test]
    fn epoch_bumps_on_mutation_and_index_changes() {
        let mut db = db();
        let e0 = db.stats_epoch();
        let mut io = IoStats::new();
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(10)], &mut io)
            .unwrap();
        let e1 = db.stats_epoch();
        assert!(e1 > e0, "data mutation must bump the epoch");
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        let e2 = db.stats_epoch();
        assert!(e2 > e1, "index creation must bump the epoch");
        db.drop_index("t", "ix_a").unwrap();
        assert!(db.stats_epoch() > e2, "index drop must bump the epoch");
    }

    #[test]
    fn reanalyzing_unchanged_data_keeps_epoch() {
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..50 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 5)], &mut io)
                .unwrap();
        }
        db.analyze_all();
        let e = db.stats_epoch();
        db.analyze_all();
        assert_eq!(
            db.stats_epoch(),
            e,
            "ANALYZE over unchanged data must not invalidate caches"
        );
        // A data change followed by re-analysis bumps twice (mutation +
        // changed stats).
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1000), Value::Int(3)], &mut io)
            .unwrap();
        db.analyze_all();
        assert!(db.stats_epoch() >= e + 2);
    }

    #[test]
    fn dirty_flag_tracks_mutation_and_analyze() {
        let mut db = db();
        assert!(db.stats_dirty(), "create_table marks stats dirty");
        db.analyze_all();
        assert!(!db.stats_dirty());
        let mut io = IoStats::new();
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(10)], &mut io)
            .unwrap();
        assert!(db.stats_dirty(), "DML marks stats dirty");
        db.analyze_all();
        assert!(!db.stats_dirty());
        // Index DDL flows through table_mut and re-dirties.
        db.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        assert!(db.stats_dirty());
        // Clones inherit the flag.
        db.analyze_all();
        assert!(!db.clone().stats_dirty());
    }

    #[test]
    fn try_clone_fails_only_under_injected_fault() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let db = db();
        assert!(db.try_clone().is_ok());
        crate::fault::arm(crate::fault::FaultPlan::new(7).fail("storage.clone", 0, 1));
        let err = db.try_clone().unwrap_err();
        assert!(err.is_injected(), "{err}");
        assert!(db.try_clone().is_ok(), "limit 1: second clone succeeds");
        crate::fault::disarm();
    }

    #[test]
    fn create_index_fault_leaves_no_partial_index() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..50 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 5)], &mut io)
                .unwrap();
        }
        crate::fault::arm(crate::fault::FaultPlan::new(7).fail("storage.create_index", 0, 1));
        let def = IndexDef::new("ix_a", "t", vec!["a".into()]);
        assert!(db.create_index(def.clone(), &mut io).unwrap_err().is_injected());
        assert!(db.all_indexes().is_empty(), "failed build must not install");
        db.check_consistency().expect("consistent after injected failure");
        // Retry (fault budget exhausted) succeeds and is fully populated.
        db.create_index(def, &mut io).unwrap();
        crate::fault::disarm();
        db.check_consistency().expect("consistent after retry");
        assert_eq!(db.table("t").unwrap().index("ix_a").unwrap().len(), 50);
    }

    #[test]
    fn corrupted_stats_detected_and_healed_by_reanalyze() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..100 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 10)], &mut io)
                .unwrap();
        }
        crate::fault::arm(crate::fault::FaultPlan::new(7).corrupt_stats("storage.analyze", 0, 1));
        db.analyze_all();
        crate::fault::disarm();
        let corrupted = db.stats("t").unwrap();
        assert_eq!(corrupted.column("a").unwrap().ndv, 1);
        assert!(corrupted.row_count >= 1_000_000);
        // Data itself is untouched; a clean ANALYZE restores truth.
        db.check_consistency().expect("corruption affects stats only");
        db.analyze_all();
        assert_eq!(db.stats("t").unwrap().row_count, 100);
        assert_eq!(db.stats("t").unwrap().column("a").unwrap().ndv, 10);
    }

    #[test]
    fn analyze_populates_stats() {
        let mut db = db();
        let mut io = IoStats::new();
        for i in 0..10 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 3)], &mut io)
                .unwrap();
        }
        assert!(db.stats("t").is_none());
        db.analyze_all();
        let stats = db.stats("t").unwrap();
        assert_eq!(stats.row_count, 10);
        assert_eq!(stats.column("a").unwrap().ndv, 3);
    }
}
