//! Storage-layer error type.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Schema construction failed (empty PK, duplicate columns, ...).
    InvalidSchema(String),
    UnknownTable(String),
    UnknownColumn { table: String, column: String },
    UnknownIndex { table: String, index: String },
    DuplicateTable(String),
    DuplicateIndex { table: String, index: String },
    /// Primary-key or unique-index violation.
    DuplicateKey { table: String, key: String },
    /// Row arity or value type does not match the schema.
    RowMismatch(String),
    /// A fault injected by an armed [`crate::fault::FaultPlan`] (chaos
    /// testing); `site` names the instrumented operation that failed.
    FaultInjected { site: String },
    /// An operating-system I/O failure from the disk backend (open, read,
    /// write, fsync). Not retryable: the pager cannot know whether the
    /// kernel persisted anything.
    Io(String),
    /// On-disk corruption detected by the disk backend: a page whose
    /// checksum does not match its payload (torn write), a malformed WAL
    /// record, or an undecodable catalog. Never retryable.
    Corrupt { detail: String },
}

impl StorageError {
    /// True for errors produced by the fault-injection layer. Injected
    /// faults model transient infrastructure failures and are the only
    /// storage errors worth retrying.
    pub fn is_injected(&self) -> bool {
        matches!(self, StorageError::FaultInjected { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table {t}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            StorageError::UnknownIndex { table, index } => {
                write!(f, "unknown index {index} on {table}")
            }
            StorageError::DuplicateTable(t) => write!(f, "table {t} already exists"),
            StorageError::DuplicateIndex { table, index } => {
                write!(f, "index {index} already exists on {table}")
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            StorageError::RowMismatch(msg) => write!(f, "row mismatch: {msg}"),
            StorageError::FaultInjected { site } => {
                write!(f, "injected fault at {site}")
            }
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::Corrupt { detail } => {
                write!(f, "storage corruption: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::UnknownTable("t".into()).to_string(),
            "unknown table t"
        );
        assert_eq!(
            StorageError::UnknownColumn {
                table: "t".into(),
                column: "c".into()
            }
            .to_string(),
            "unknown column t.c"
        );
    }
}
