//! Deterministic fault injection for chaos-testing the tuning pipeline.
//!
//! Production index automation must survive optimizer errors, failed index
//! builds, unavailable clone providers and corrupted statistics without
//! ever leaving the database inconsistent. This module provides a seeded
//! [`FaultPlan`] that can be *armed* process-wide: instrumented operation
//! sites (`storage.create_index`, `storage.clone`, `storage.analyze`,
//! `exec.whatif`, `exec.execute`, ...) consult [`hit`] and, when a rule
//! matches, fail, stall, or corrupt deterministically.
//!
//! The layer is compiled in unconditionally but is zero-cost while
//! disarmed: [`hit`] is a single relaxed atomic load on that path, so the
//! production hot paths pay nothing. Every decision an armed plan makes is
//! a pure function of `(seed, site, per-site call number)`, which makes
//! fault schedules replayable: the same plan against the same workload
//! injects exactly the same faults.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an injected fault does at its operation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with [`crate::StorageError::FaultInjected`] (or
    /// the execution-layer equivalent).
    Fail,
    /// The operation stalls for this many milliseconds, then proceeds
    /// normally (the sleep happens inside [`hit`]).
    Latency(u64),
    /// Freshly computed statistics are replaced with garbage before being
    /// installed (only meaningful at `storage.analyze`).
    CorruptStats,
}

/// One rule of a [`FaultPlan`]: where, what, and how often to inject.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation site this rule arms, e.g. `"storage.create_index"`.
    pub site: String,
    pub kind: FaultKind,
    /// Skip the first `after` calls at the site before becoming eligible.
    pub after: u64,
    /// Inject at most this many times; `u64::MAX` = unbounded.
    pub limit: u64,
    /// Chance of injecting on each eligible call, decided deterministically
    /// from the plan seed, the site and the call number. `1.0` = always.
    pub probability: f64,
}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Empty plan with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Fail `site` on every call after the first `after`, at most `limit`
    /// times.
    pub fn fail(self, site: &str, after: u64, limit: u64) -> Self {
        self.rule(FaultRule {
            site: site.to_string(),
            kind: FaultKind::Fail,
            after,
            limit,
            probability: 1.0,
        })
    }

    /// Fail `site` with the given per-call probability (seeded, so the
    /// exact schedule is still deterministic).
    pub fn fail_with_probability(self, site: &str, probability: f64, limit: u64) -> Self {
        self.rule(FaultRule {
            site: site.to_string(),
            kind: FaultKind::Fail,
            after: 0,
            limit,
            probability,
        })
    }

    /// Stall `site` for `ms` milliseconds on each eligible call.
    pub fn delay_ms(self, site: &str, ms: u64, after: u64, limit: u64) -> Self {
        self.rule(FaultRule {
            site: site.to_string(),
            kind: FaultKind::Latency(ms),
            after,
            limit,
            probability: 1.0,
        })
    }

    /// Corrupt statistics computed at `site` (normally `storage.analyze`).
    pub fn corrupt_stats(self, site: &str, after: u64, limit: u64) -> Self {
        self.rule(FaultRule {
            site: site.to_string(),
            kind: FaultKind::CorruptStats,
            after,
            limit,
            probability: 1.0,
        })
    }
}

/// One injected fault, for post-run assertions and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    pub site: String,
    /// 1-based call number at the site when the fault fired.
    pub call: u64,
    pub kind: FaultKind,
}

#[derive(Debug, Default)]
struct Armed {
    plan: FaultPlan,
    /// Per-site call counts since arming.
    calls: BTreeMap<String, u64>,
    /// Per-rule injection counts (indexed like `plan.rules`).
    injected: Vec<u64>,
    log: Vec<Injection>,
}

/// Fast-path gate: a relaxed load is all a disarmed process ever pays.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armed>> = Mutex::new(None);

/// Arms `plan` process-wide, resetting all call counters and the injection
/// log. Replaces any previously armed plan.
pub fn arm(plan: FaultPlan) {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let injected = vec![0; plan.rules.len()];
    *guard = Some(Armed {
        plan,
        calls: BTreeMap::new(),
        injected,
        log: Vec::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection and returns the log of everything injected
/// since [`arm`].
pub fn disarm() -> Vec<Injection> {
    ARMED.store(false, Ordering::SeqCst);
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.take().map(|a| a.log).unwrap_or_default()
}

/// True while a plan is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Snapshot of the injection log of the currently armed plan.
pub fn injections() -> Vec<Injection> {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|a| a.log.clone()).unwrap_or_default()
}

/// Number of faults injected by the currently armed plan.
pub fn injection_count() -> usize {
    let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|a| a.log.len()).unwrap_or(0)
}

/// splitmix64: the deterministic coin for probabilistic rules.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Consults the armed plan at an operation site. Returns the fault to
/// apply, if any; [`FaultKind::Latency`] sleeps *here* (outside the state
/// lock) and is also returned so callers may journal it. Disarmed, this is
/// one relaxed atomic load.
#[inline]
pub fn hit(site: &str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> Option<FaultKind> {
    let kind = {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        let armed = guard.as_mut()?;
        let call = armed.calls.entry(site.to_string()).or_insert(0);
        *call += 1;
        let call = *call;
        let seed = armed.plan.seed;
        let mut fired: Option<(usize, FaultKind)> = None;
        for (i, rule) in armed.plan.rules.iter().enumerate() {
            if rule.site != site || call <= rule.after || armed.injected[i] >= rule.limit {
                continue;
            }
            if rule.probability < 1.0 {
                let u = (mix(seed ^ fnv(site) ^ call) >> 11) as f64 / (1u64 << 53) as f64;
                if u >= rule.probability {
                    continue;
                }
            }
            fired = Some((i, rule.kind));
            break;
        }
        let (i, kind) = fired?;
        armed.injected[i] += 1;
        armed.log.push(Injection {
            site: site.to_string(),
            call,
            kind,
        });
        kind
    };
    // Latency is served after the state lock is released so concurrent
    // sites are not serialized behind a sleeping injector.
    if let FaultKind::Latency(ms) = kind {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    Some(kind)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, MutexGuard, OnceLock};

    /// Fault state is process-global; tests touching it serialize here.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_is_silent() {
        let _g = lock();
        disarm();
        assert!(!is_armed());
        assert_eq!(hit("storage.create_index"), None);
        assert!(injections().is_empty());
    }

    #[test]
    fn trigger_counts_and_limits_respected() {
        let _g = lock();
        arm(FaultPlan::new(1).fail("s", 2, 2));
        assert_eq!(hit("s"), None); // call 1 <= after
        assert_eq!(hit("s"), None); // call 2 <= after
        assert_eq!(hit("s"), Some(FaultKind::Fail)); // call 3
        assert_eq!(hit("s"), Some(FaultKind::Fail)); // call 4
        assert_eq!(hit("s"), None); // limit exhausted
        assert_eq!(hit("other"), None); // site mismatch
        let log = disarm();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], Injection { site: "s".into(), call: 3, kind: FaultKind::Fail });
    }

    #[test]
    fn probabilistic_schedule_is_deterministic() {
        let _g = lock();
        let run = |seed: u64| {
            arm(FaultPlan::new(seed).fail_with_probability("p", 0.5, u64::MAX));
            let fired: Vec<bool> = (0..64).map(|_| hit("p").is_some()).collect();
            disarm();
            fired
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule (w.h.p.)");
        let n = a.iter().filter(|f| **f).count();
        assert!((8..56).contains(&n), "~50% fire rate, got {n}/64");
    }

    #[test]
    fn arming_replaces_previous_plan() {
        let _g = lock();
        arm(FaultPlan::new(1).fail("x", 0, u64::MAX));
        assert_eq!(hit("x"), Some(FaultKind::Fail));
        arm(FaultPlan::new(1).fail("y", 0, u64::MAX));
        assert_eq!(hit("x"), None, "old rule gone");
        assert_eq!(hit("y"), Some(FaultKind::Fail));
        assert_eq!(injection_count(), 1, "log reset on re-arm");
        disarm();
    }

    #[test]
    fn latency_rule_sleeps_and_reports() {
        let _g = lock();
        arm(FaultPlan::new(1).delay_ms("slow", 5, 0, 1));
        let t0 = std::time::Instant::now();
        assert_eq!(hit("slow"), Some(FaultKind::Latency(5)));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(4));
        assert_eq!(hit("slow"), None);
        disarm();
    }
}
