//! Paged heap: one chain of slotted [`PageType::Heap`] pages per table.
//!
//! Rows are [`codec`](crate::codec)-encoded tuples appended to the last
//! page of the chain; a full chain grows by one page at a time. A row's
//! identity is its *rowid* — `(page, slot)` packed by
//! [`codec::encode_rowid`](crate::codec::encode_rowid) — which stays stable
//! for the row's whole life: deletes tombstone the slot rather than shift
//! neighbours, and updates rewrite in place when the new image fits,
//! falling back to tombstone-and-move (returning the new location so the
//! caller can repoint its primary-key tree).

use crate::error::StorageError;
use crate::io::IoStats;
use crate::pager::page::{Page, PageType};
use crate::pager::Pager;

/// A row's physical address.
pub type RowLoc = (u32, u16);

fn expect_heap(page: &Page) -> Result<(), StorageError> {
    match page.page_type()? {
        PageType::Heap => Ok(()),
        t => Err(StorageError::Corrupt {
            detail: format!("expected heap page, found {t:?}"),
        }),
    }
}

/// Creates an empty one-page chain; returns its (first, last) page.
pub fn create(p: &mut Pager) -> Result<(u32, u32), StorageError> {
    let no = p.allocate_page()?;
    p.write_page(no, Page::new(PageType::Heap))?;
    Ok((no, no))
}

/// Appends a row to the chain ending at `last`. Returns the row's location
/// and the possibly-new last page.
pub fn insert(
    p: &mut Pager,
    last: u32,
    row: &[u8],
) -> Result<(RowLoc, u32), StorageError> {
    let mut io = IoStats::new();
    let mut page = p.read_page(last, &mut io)?;
    expect_heap(&page)?;
    if let Some(slot) = page.add_cell(row) {
        p.write_page(last, page)?;
        return Ok(((last, slot as u16), last));
    }
    let fresh = p.allocate_page()?;
    let mut fresh_page = Page::new(PageType::Heap);
    let slot = fresh_page.add_cell(row).ok_or_else(|| {
        StorageError::Io(format!("row of {} bytes exceeds page capacity", row.len()))
    })?;
    p.write_page(fresh, fresh_page)?;
    page.set_next_page(fresh);
    p.write_page(last, page)?;
    Ok(((fresh, slot as u16), fresh))
}

/// Tombstones a row. The slot number is never reused, so every other
/// rowid in the page stays valid.
pub fn delete(p: &mut Pager, loc: RowLoc) -> Result<(), StorageError> {
    let mut io = IoStats::new();
    let mut page = p.read_page(loc.0, &mut io)?;
    expect_heap(&page)?;
    page.tombstone(loc.1 as usize);
    p.write_page(loc.0, page)
}

/// Rewrites a row. In place when the new image fits in its page; otherwise
/// tombstones the old slot and appends to the chain end. Returns the row's
/// (possibly moved) location and the possibly-new last page.
pub fn update(
    p: &mut Pager,
    loc: RowLoc,
    last: u32,
    row: &[u8],
) -> Result<(RowLoc, u32), StorageError> {
    let mut io = IoStats::new();
    let mut page = p.read_page(loc.0, &mut io)?;
    expect_heap(&page)?;
    if page.replace_cell(loc.1 as usize, row) {
        p.write_page(loc.0, page)?;
        return Ok((loc, last));
    }
    page.tombstone(loc.1 as usize);
    p.write_page(loc.0, page)?;
    insert(p, last, row)
}

/// Reads a single row by location.
pub fn get(
    p: &mut Pager,
    loc: RowLoc,
    io: &mut IoStats,
) -> Result<Vec<u8>, StorageError> {
    let page = p.read_page(loc.0, io)?;
    expect_heap(&page)?;
    let slot = loc.1 as usize;
    if slot >= page.nslots() || page.is_tombstone(slot) {
        return Err(StorageError::Corrupt {
            detail: format!("rowid ({}, {}) points at a dead slot", loc.0, loc.1),
        });
    }
    Ok(page.cell(slot).to_vec())
}

/// Walks the whole chain in physical order, visiting every live row.
/// Charges `io` one page per chain link. Returns the number of rows seen.
pub fn scan<F: FnMut(RowLoc, &[u8])>(
    p: &mut Pager,
    first: u32,
    io: &mut IoStats,
    mut visit: F,
) -> Result<u64, StorageError> {
    let mut no = first;
    let mut rows = 0u64;
    while no != 0 {
        let page = p.read_page(no, io)?;
        expect_heap(&page)?;
        for slot in 0..page.nslots() {
            if !page.is_tombstone(slot) {
                visit((no, slot as u16), page.cell(slot));
                rows += 1;
            }
        }
        no = page.next_page();
    }
    Ok(rows)
}

/// Frees every page of the chain (DROP TABLE).
pub fn free(p: &mut Pager, first: u32) -> Result<(), StorageError> {
    let mut io = IoStats::new();
    let mut no = first;
    while no != 0 {
        let next = p.read_page(no, &mut io)?.next_page();
        p.free_page(no)?;
        no = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::page::DISK_PAGE_SIZE;
    use crate::pager::PagerOptions;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aim-heap-test-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pager(name: &str) -> Pager {
        Pager::open(&tmp(name), PagerOptions::default()).unwrap()
    }

    #[test]
    fn insert_get_scan_roundtrip() {
        let mut p = pager("roundtrip");
        let (first, mut last) = create(&mut p).unwrap();
        let mut locs = Vec::new();
        for i in 0..100u32 {
            let row = format!("row-{i}").into_bytes();
            let (loc, new_last) = insert(&mut p, last, &row).unwrap();
            last = new_last;
            locs.push((loc, row));
        }
        p.commit().unwrap();
        let mut io = IoStats::new();
        for (loc, row) in &locs {
            assert_eq!(&get(&mut p, *loc, &mut io).unwrap(), row);
        }
        let mut seen = Vec::new();
        scan(&mut p, first, &mut io, |loc, bytes| {
            seen.push((loc, bytes.to_vec()))
        })
        .unwrap();
        assert_eq!(seen, locs);
    }

    #[test]
    fn chain_grows_and_scan_charges_pages() {
        let mut p = pager("grow");
        let (first, mut last) = create(&mut p).unwrap();
        let row = vec![7u8; 1000];
        for _ in 0..100 {
            last = insert(&mut p, last, &row).unwrap().1;
        }
        p.commit().unwrap();
        assert_ne!(first, last, "100 KB of rows needs several 16 KB pages");
        let mut io = IoStats::new();
        let n = scan(&mut p, first, &mut io, |_, _| {}).unwrap();
        assert_eq!(n, 100);
        assert!(io.pages_read >= 7, "chain length charged: {}", io.pages_read);
    }

    #[test]
    fn delete_tombstones_without_shifting_rowids() {
        let mut p = pager("delete");
        let (first, mut last) = create(&mut p).unwrap();
        let mut locs = Vec::new();
        for i in 0..10u8 {
            let (loc, l) = insert(&mut p, last, &[i; 16]).unwrap();
            last = l;
            locs.push(loc);
        }
        delete(&mut p, locs[4]).unwrap();
        p.commit().unwrap();
        let mut io = IoStats::new();
        assert!(get(&mut p, locs[4], &mut io).is_err(), "dead slot");
        assert_eq!(get(&mut p, locs[5], &mut io).unwrap(), vec![5u8; 16]);
        let n = scan(&mut p, first, &mut io, |_, _| {}).unwrap();
        assert_eq!(n, 9);
    }

    #[test]
    fn update_in_place_and_moved() {
        let mut p = pager("update");
        let (_, mut last) = create(&mut p).unwrap();
        let (loc, l) = insert(&mut p, last, &[1u8; 64]).unwrap();
        last = l;
        // Same-size rewrite stays put.
        let (loc2, l) = update(&mut p, loc, last, &[2u8; 64]).unwrap();
        last = l;
        assert_eq!(loc2, loc);
        // Fill the page so a grown rewrite must move.
        while {
            let mut io = IoStats::new();
            let page = p.read_page(loc.0, &mut io).unwrap();
            page.fits(4000, false)
        } {
            last = insert(&mut p, last, &[9u8; 3000]).unwrap().1;
        }
        let (loc3, _) = update(&mut p, loc, last, &vec![3u8; 8000]).unwrap();
        assert_ne!(loc3, loc, "grown row must move off the full page");
        p.commit().unwrap();
        let mut io = IoStats::new();
        assert!(get(&mut p, loc, &mut io).is_err(), "old slot tombstoned");
        assert_eq!(get(&mut p, loc3, &mut io).unwrap(), vec![3u8; 8000]);
    }

    #[test]
    fn oversized_row_rejected() {
        let mut p = pager("oversize");
        let (_, last) = create(&mut p).unwrap();
        let err = insert(&mut p, last, &vec![0u8; DISK_PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err}");
    }

    #[test]
    fn free_releases_chain() {
        let mut p = pager("free");
        let (first, mut last) = create(&mut p).unwrap();
        for _ in 0..50 {
            last = insert(&mut p, last, &[5u8; 2000]).unwrap().1;
        }
        p.commit().unwrap();
        let before = p.meta().page_count;
        free(&mut p, first).unwrap();
        p.commit().unwrap();
        // A fresh chain of the same size reuses the freed pages.
        let (_, mut last2) = create(&mut p).unwrap();
        for _ in 0..50 {
            last2 = insert(&mut p, last2, &[6u8; 2000]).unwrap().1;
        }
        p.commit().unwrap();
        assert_eq!(p.meta().page_count, before);
    }
}
