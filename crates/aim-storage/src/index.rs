//! Secondary indexes.
//!
//! A secondary index is an ordered set of key tuples of the form
//! `key columns ++ primary key columns` (InnoDB layout): the PK suffix both
//! disambiguates duplicate key prefixes and lets covering scans avoid the
//! base table entirely.

use crate::backend::{memory_backend, StorageBackend};
use crate::io::IoStats;
use crate::schema::IndexDef;
use crate::value::{Key, Row, Value};
use std::collections::BTreeSet;
use std::ops::Bound;
use std::sync::Arc;

/// A materialized composite secondary index.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    def: IndexDef,
    /// Positions of the key columns within the table's row layout.
    key_positions: Vec<usize>,
    /// Positions of the primary key columns within the row layout.
    pk_positions: Vec<usize>,
    entries: BTreeSet<Key>,
    /// Running total of entry bytes, for size accounting.
    total_bytes: u64,
    /// Decides whether scans charge measured page I/O (disk backend) or
    /// the simulated model. Entries themselves always live in `entries`.
    backend: Arc<dyn StorageBackend>,
}

impl SecondaryIndex {
    /// Creates an empty index on the in-memory backend.
    /// `key_positions`/`pk_positions` must match the owning table's row
    /// layout; the table is responsible for resolving them from
    /// `def.columns`.
    pub fn new(def: IndexDef, key_positions: Vec<usize>, pk_positions: Vec<usize>) -> Self {
        Self {
            def,
            key_positions,
            pk_positions,
            entries: BTreeSet::new(),
            total_bytes: 0,
            backend: memory_backend(),
        }
    }

    /// Re-points scan accounting at `backend` (set by the owning table).
    pub(crate) fn set_backend(&mut self, backend: Arc<dyn StorageBackend>) {
        self.backend = backend;
    }

    /// Inserts a pre-built entry (backend recovery path — the entry comes
    /// from the on-disk tree, not from a row).
    pub(crate) fn insert_entry(&mut self, entry: Key) {
        let bytes: u64 = entry.iter().map(Value::storage_size).sum();
        if self.entries.insert(entry) {
            self.total_bytes += bytes;
        }
    }

    /// All entries in key order (backend persistence path).
    pub(crate) fn entries(&self) -> impl Iterator<Item = &Key> {
        self.entries.iter()
    }

    /// The index definition (name, table, key columns).
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Positions of the key columns in the owning table's row layout.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Positions of the primary key columns in the owning table's row layout.
    pub fn pk_positions(&self) -> &[usize] {
        &self.pk_positions
    }

    /// Number of key columns (the index *width*).
    pub fn width(&self) -> usize {
        self.key_positions.len()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated size in bytes including per-entry B+-tree overhead.
    pub fn size_bytes(&self) -> u64 {
        // ~1.4x structural overhead: interior nodes + fill factor.
        const ENTRY_OVERHEAD: u64 = 12;
        let raw = self.total_bytes + self.entries.len() as u64 * ENTRY_OVERHEAD;
        raw + raw / 3
    }

    /// Builds the full index entry (key columns then PK columns) for a row.
    pub fn entry_for_row(&self, row: &Row) -> Key {
        let mut entry = Vec::with_capacity(self.key_positions.len() + self.pk_positions.len());
        for &p in &self.key_positions {
            entry.push(row[p].clone());
        }
        for &p in &self.pk_positions {
            entry.push(row[p].clone());
        }
        entry
    }

    /// Extracts the primary key suffix from a stored entry.
    pub fn pk_of_entry<'a>(&self, entry: &'a Key) -> &'a [Value] {
        &entry[self.key_positions.len()..]
    }

    /// Inserts the entry for `row`.
    pub fn insert_row(&mut self, row: &Row) {
        let entry = self.entry_for_row(row);
        let bytes: u64 = entry.iter().map(Value::storage_size).sum();
        if self.entries.insert(entry) {
            self.total_bytes += bytes;
        }
    }

    /// Removes the entry for `row`.
    pub fn remove_row(&mut self, row: &Row) {
        let entry = self.entry_for_row(row);
        let bytes: u64 = entry.iter().map(Value::storage_size).sum();
        if self.entries.remove(&entry) {
            self.total_bytes -= bytes;
        }
    }

    /// Scans all entries whose first `prefix.len()` key columns equal
    /// `prefix`, optionally refined by a range on the next key column.
    ///
    /// Charges one seek (tree descent) plus sequential reads proportional to
    /// the entries touched. Returns references to the matching entries in
    /// key order.
    pub fn scan_prefix_range(
        &self,
        prefix: &[Value],
        next_col_range: (Bound<&Value>, Bound<&Value>),
        io: &mut IoStats,
    ) -> Vec<&Key> {
        assert!(
            prefix.len() < self.key_positions.len() || matches!(next_col_range, (Bound::Unbounded, Bound::Unbounded)),
            "range column must exist beyond the equality prefix"
        );
        let (lower, upper) = crate::value::prefix_range_bounds(prefix, next_col_range);

        let measured = self.backend.account_index_range(
            &self.def.table,
            &self.def.name,
            lower.as_ref(),
            upper.as_ref(),
            io,
        );
        let mut bytes = 0u64;
        let mut out = Vec::new();
        for entry in self.entries.range((lower, upper)) {
            bytes += entry.iter().map(Value::storage_size).sum::<u64>();
            out.push(entry);
        }
        if !measured {
            io.charge_seek();
            io.charge_rows(out.len() as u64);
            if bytes > 0 {
                io.charge_sequential(bytes);
            }
        }
        out
    }

    /// Lazy variant of [`SecondaryIndex::scan_prefix_range`]: returns the
    /// matching entries in key order *without* charging I/O. Callers that
    /// stop early (ORDER BY ... LIMIT served from index order, §IV-E of the
    /// paper) must charge [`IoStats`] per entry actually consumed.
    pub fn iter_prefix_range(
        &self,
        prefix: &[Value],
        next_col_range: (Bound<&Value>, Bound<&Value>),
    ) -> impl Iterator<Item = &Key> {
        let (lower, upper) = crate::value::prefix_range_bounds(prefix, next_col_range);
        self.entries.range((lower, upper))
    }

    /// Scans the entire index in key order (used for index-ordered GROUP BY
    /// / ORDER BY without a usable predicate).
    pub fn scan_all(&self, io: &mut IoStats) -> Vec<&Key> {
        let measured = self.backend.account_index_range(
            &self.def.table,
            &self.def.name,
            Bound::Unbounded,
            Bound::Unbounded,
            io,
        );
        if !measured {
            io.charge_seek();
            io.charge_rows(self.entries.len() as u64);
            io.charge_sequential(self.total_bytes);
        }
        self.entries.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::IndexDef;

    /// Index on (col a at pos 1, col b at pos 2) with PK at pos 0.
    fn index() -> SecondaryIndex {
        SecondaryIndex::new(
            IndexDef::new("ix", "t", vec!["a".into(), "b".into()]),
            vec![1, 2],
            vec![0],
        )
    }

    fn row(pk: i64, a: i64, b: &str) -> Row {
        vec![Value::Int(pk), Value::Int(a), Value::Str(b.into())]
    }

    #[test]
    fn insert_and_remove_maintain_len_and_bytes() {
        let mut ix = index();
        ix.insert_row(&row(1, 10, "x"));
        ix.insert_row(&row(2, 20, "y"));
        assert_eq!(ix.len(), 2);
        let size = ix.size_bytes();
        assert!(size > 0);
        ix.remove_row(&row(1, 10, "x"));
        assert_eq!(ix.len(), 1);
        assert!(ix.size_bytes() < size);
    }

    #[test]
    fn entry_layout_is_key_then_pk() {
        let ix = index();
        let e = ix.entry_for_row(&row(7, 1, "z"));
        assert_eq!(
            e,
            vec![Value::Int(1), Value::Str("z".into()), Value::Int(7)]
        );
        assert_eq!(ix.pk_of_entry(&e), &[Value::Int(7)]);
    }

    #[test]
    fn prefix_scan_finds_exact_matches() {
        let mut ix = index();
        for (pk, a, b) in [(1, 10, "x"), (2, 10, "y"), (3, 20, "z")] {
            ix.insert_row(&row(pk, a, b));
        }
        let mut io = IoStats::new();
        let hits = ix.scan_prefix_range(
            &[Value::Int(10)],
            (Bound::Unbounded, Bound::Unbounded),
            &mut io,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(io.seeks, 1);
        assert_eq!(io.rows_read, 2);
    }

    #[test]
    fn prefix_plus_range_scan() {
        let mut ix = index();
        for (pk, a, b) in [(1, 10, "a"), (2, 10, "m"), (3, 10, "z"), (4, 20, "m")] {
            ix.insert_row(&row(pk, a, b));
        }
        let mut io = IoStats::new();
        let lo = Value::Str("b".into());
        let hi = Value::Str("y".into());
        let hits = ix.scan_prefix_range(
            &[Value::Int(10)],
            (Bound::Included(&lo), Bound::Included(&hi)),
            &mut io,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(ix.pk_of_entry(hits[0]), &[Value::Int(2)]);
    }

    #[test]
    fn open_range_on_first_column() {
        let mut ix = index();
        for (pk, a) in [(1, 5), (2, 10), (3, 15)] {
            ix.insert_row(&row(pk, a, "c"));
        }
        let mut io = IoStats::new();
        let lo = Value::Int(6);
        let hits =
            ix.scan_prefix_range(&[], (Bound::Excluded(&lo), Bound::Unbounded), &mut io);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn excluded_lower_bound_skips_all_equal_keys() {
        let mut ix = index();
        // Two rows share a=10 with different PKs; Excluded(10) must skip both.
        ix.insert_row(&row(1, 10, "x"));
        ix.insert_row(&row(2, 10, "y"));
        ix.insert_row(&row(3, 11, "z"));
        let mut io = IoStats::new();
        let lo = Value::Int(10);
        let hits =
            ix.scan_prefix_range(&[], (Bound::Excluded(&lo), Bound::Unbounded), &mut io);
        assert_eq!(hits.len(), 1);
        assert_eq!(ix.pk_of_entry(hits[0]), &[Value::Int(3)]);
    }

    #[test]
    fn full_scan_returns_sorted_entries() {
        let mut ix = index();
        ix.insert_row(&row(1, 30, "c"));
        ix.insert_row(&row(2, 10, "a"));
        ix.insert_row(&row(3, 20, "b"));
        let mut io = IoStats::new();
        let all = ix.scan_all(&mut io);
        let firsts: Vec<_> = all.iter().map(|e| e[0].clone()).collect();
        assert_eq!(firsts, vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
    }

    #[test]
    fn duplicate_row_insert_is_idempotent() {
        let mut ix = index();
        ix.insert_row(&row(1, 10, "x"));
        ix.insert_row(&row(1, 10, "x"));
        assert_eq!(ix.len(), 1);
    }
}
