//! Physical I/O accounting.
//!
//! The engine simulates a disk-backed B+-tree storage layout: data lives in
//! fixed-size pages, point lookups cost a *seek* plus a page read, and range
//! scans cost one seek plus sequential page reads. Every scan primitive in
//! the engine charges its work to an [`IoStats`], and the executor converts
//! the totals into the simulated-CPU metric that AIM's formulas consume
//! (the paper's `cpu_avg` includes `CPU_IOWAIT`, i.e. I/O shows up as CPU).

/// Fixed page size of the simulated storage engine (InnoDB default: 16 KiB).
pub const PAGE_SIZE: u64 = 16 * 1024;

/// Counters accumulated while executing physical operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read, sequential or random.
    pub pages_read: u64,
    /// Random repositioning operations (B+-tree descents).
    pub seeks: u64,
    /// Rows (or index entries) examined.
    pub rows_read: u64,
    /// Rows written (inserts + deletes + updated index entries).
    pub rows_written: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Pages that missed the buffer pool and were fetched from the disk
    /// file (disk backend only; always zero for the in-memory engine).
    pub pages_faulted: u64,
}

impl IoStats {
    /// New, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.pages_read += other.pages_read;
        self.seeks += other.seeks;
        self.rows_read += other.rows_read;
        self.rows_written += other.rows_written;
        self.pages_written += other.pages_written;
        self.pages_faulted += other.pages_faulted;
    }

    /// Charges a B+-tree point lookup: one seek plus one leaf page.
    pub fn charge_seek(&mut self) {
        self.seeks += 1;
        self.pages_read += 1;
    }

    /// Charges a sequential scan over `bytes` of data (at least one page).
    pub fn charge_sequential(&mut self, bytes: u64) {
        self.pages_read += bytes.div_ceil(PAGE_SIZE).max(1);
    }

    /// Charges examination of `n` rows/entries.
    pub fn charge_rows(&mut self, n: u64) {
        self.rows_read += n;
    }

    /// Charges `n` row writes over `bytes` of data.
    pub fn charge_writes(&mut self, n: u64, bytes: u64) {
        self.rows_written += n;
        self.pages_written += bytes.div_ceil(PAGE_SIZE).max(1);
    }
}

/// Number of pages needed to store `bytes` of data.
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_charge_rounds_up_and_floors_at_one() {
        let mut io = IoStats::new();
        io.charge_sequential(1);
        assert_eq!(io.pages_read, 1);
        io.charge_sequential(PAGE_SIZE + 1);
        assert_eq!(io.pages_read, 3);
    }

    #[test]
    fn seek_counts_page_and_seek() {
        let mut io = IoStats::new();
        io.charge_seek();
        assert_eq!(io.seeks, 1);
        assert_eq!(io.pages_read, 1);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = IoStats::new();
        a.charge_seek();
        a.charge_rows(5);
        let mut b = IoStats::new();
        b.charge_writes(2, 100);
        b.add(&a);
        assert_eq!(b.seeks, 1);
        assert_eq!(b.rows_read, 5);
        assert_eq!(b.rows_written, 2);
        assert_eq!(b.pages_written, 1);
    }

    #[test]
    fn pages_for_exact_multiples() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE * 2 + 1), 3);
    }
}
