//! In-memory relational storage engine for the AIM reproduction.
//!
//! This crate is the substrate the paper assumes a DBMS provides:
//!
//! * typed [`value::Value`]s with B+-tree key ordering,
//! * clustered-primary-key [`table::Table`]s with composite
//!   [`index::SecondaryIndex`]es (InnoDB layout: secondary entries carry the
//!   PK as suffix),
//! * per-column [`stats`] (NDV, equi-depth histograms) powering selectivity
//!   estimation and *dataless indexes*,
//! * physical [`io`] accounting (pages, seeks, rows) from which simulated
//!   CPU cost is derived, and
//! * a cloneable [`database::Database`] catalog — cloning stands in for the
//!   paper's MyShadow test-environment provider.
//!
//! # Example
//!
//! ```
//! use aim_storage::{
//!     Database, TableSchema, ColumnDef, ColumnType, IndexDef, IoStats, Value,
//! };
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new(
//!     "students",
//!     vec![
//!         ColumnDef::new("id", ColumnType::Int),
//!         ColumnDef::new("score", ColumnType::Int),
//!     ],
//!     &["id"],
//! ).unwrap()).unwrap();
//!
//! let mut io = IoStats::new();
//! for i in 0..100 {
//!     db.table_mut("students").unwrap()
//!         .insert(vec![Value::Int(i), Value::Int(i % 10)], &mut io)
//!         .unwrap();
//! }
//! db.create_index(IndexDef::new("ix_score", "students", vec!["score".into()]), &mut io).unwrap();
//! db.analyze_all();
//! assert_eq!(db.stats("students").unwrap().column("score").unwrap().ndv, 10);
//! ```

pub mod backend;
pub mod btree_page;
pub mod codec;
pub mod database;
pub mod error;
pub mod fault;
pub mod heap;
pub mod index;
pub mod io;
pub mod pager;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use backend::{
    memory_backend, BackendKind, DiskBackend, LoadedTable, MemoryBackend, StorageBackend,
    StorageCounters, TaggedEntry,
};
pub use database::Database;
pub use error::StorageError;
pub use pager::{Pager, PagerOptions};
pub use fault::{FaultKind, FaultPlan, FaultRule, Injection};
pub use index::SecondaryIndex;
pub use io::{pages_for, IoStats, PAGE_SIZE};
pub use schema::{ColumnDef, ColumnType, IndexDef, TableSchema};
pub use stats::{analyze, distinct_prefix_count, ColumnStats, Histogram, TableStats};
pub use table::Table;
pub use value::{prefix_upper_bound, Key, Row, Value};
