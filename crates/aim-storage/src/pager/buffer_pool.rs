//! Fixed-capacity buffer pool with clock (second-chance) eviction.
//!
//! The pool caches page images between the pager and the database file and
//! accounts every hit, miss and eviction — the counters surface through
//! `aim-telemetry` as `storage.bp.*`. Eviction policy is *no-steal until
//! committed*: a frame dirtied by the in-flight transaction can never be
//! chosen as a victim (its image exists nowhere durable yet), so the pool
//! temporarily grows past capacity if a transaction's working set exceeds
//! it. Committed dirty victims are returned to the pager, which writes
//! them to the database file before reusing the frame — safe at any time,
//! because the WAL already holds their committed image and redo is
//! idempotent.

use std::collections::HashMap;

#[derive(Debug)]
struct Frame {
    page_no: u32,
    data: Vec<u8>,
    /// Modified since last flushed to the database file.
    dirty: bool,
    /// Written by the in-flight transaction: not evictable.
    uncommitted: bool,
    /// Clock reference bit (second chance).
    referenced: bool,
}

/// Hit/miss/eviction counts since the pool was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// The buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Option<Frame>>,
    free_slots: Vec<usize>,
    map: HashMap<u32, usize>,
    hand: usize,
    counters: PoolCounters,
}

impl BufferPool {
    /// A pool holding at most `capacity` frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            frames: Vec::new(),
            free_slots: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            counters: PoolCounters::default(),
        }
    }

    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks a page up, counting a hit or a miss.
    pub fn get(&mut self, page_no: u32) -> Option<&[u8]> {
        match self.map.get(&page_no) {
            Some(&idx) => {
                self.counters.hits += 1;
                let f = self.frames[idx].as_mut().expect("mapped frame");
                f.referenced = true;
                Some(&f.data)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Looks a page up without touching the counters or the clock (pager
    /// internals: transaction bookkeeping, not query traffic).
    pub fn peek(&self, page_no: u32) -> Option<&[u8]> {
        self.map
            .get(&page_no)
            .map(|&idx| self.frames[idx].as_ref().expect("mapped frame").data.as_slice())
    }

    /// True if the frame is resident and dirty.
    pub fn is_dirty(&self, page_no: u32) -> bool {
        self.map
            .get(&page_no)
            .is_some_and(|&idx| self.frames[idx].as_ref().expect("mapped frame").dirty)
    }

    /// Inserts or overwrites a page image. Returns an evicted *committed
    /// dirty* page `(page_no, sealed image)` that the caller must write to
    /// the database file before the eviction is durable-safe.
    pub fn put(
        &mut self,
        page_no: u32,
        data: Vec<u8>,
        dirty: bool,
        uncommitted: bool,
    ) -> Option<(u32, Vec<u8>)> {
        if let Some(&idx) = self.map.get(&page_no) {
            let f = self.frames[idx].as_mut().expect("mapped frame");
            f.data = data;
            f.dirty = f.dirty || dirty;
            f.uncommitted = f.uncommitted || uncommitted;
            f.referenced = true;
            return None;
        }
        let mut writeback = None;
        if self.map.len() >= self.capacity {
            if let Some(victim) = self.pick_victim() {
                let f = self.frames[victim].take().expect("victim frame");
                self.map.remove(&f.page_no);
                self.free_slots.push(victim);
                self.counters.evictions += 1;
                if f.dirty {
                    writeback = Some((f.page_no, f.data));
                }
            }
            // No victim: every frame belongs to the in-flight transaction;
            // grow past capacity rather than steal an unlogged page.
        }
        let frame = Frame {
            page_no,
            data,
            dirty,
            uncommitted,
            referenced: true,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.frames[i] = Some(frame);
                i
            }
            None => {
                self.frames.push(Some(frame));
                self.frames.len() - 1
            }
        };
        self.map.insert(page_no, idx);
        writeback
    }

    /// Clock sweep: skip uncommitted frames, give referenced frames a
    /// second chance, evict the first quiescent frame found.
    fn pick_victim(&mut self) -> Option<usize> {
        if self.frames.is_empty() {
            return None;
        }
        let n = self.frames.len();
        // Two full sweeps: the first clears reference bits, the second is
        // guaranteed to find any evictable frame.
        for _ in 0..2 * n {
            let idx = self.hand;
            self.hand = (self.hand + 1) % n;
            let Some(f) = self.frames[idx].as_mut() else {
                continue;
            };
            if f.uncommitted {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(idx);
        }
        None
    }

    /// Marks every uncommitted frame committed (transaction committed; its
    /// pages are now redo-protected by the WAL and therefore evictable).
    pub fn commit_all(&mut self) {
        for f in self.frames.iter_mut().flatten() {
            f.uncommitted = false;
        }
    }

    /// Forcibly installs a frame with exactly this state (clearing any
    /// uncommitted mark), growing the pool if needed — never evicts. Used
    /// for rollback restoration and failed-write-back reinstatement, where
    /// triggering another eviction would be unsound or could recurse.
    pub fn restore(&mut self, page_no: u32, data: Vec<u8>, dirty: bool) {
        if let Some(&idx) = self.map.get(&page_no) {
            let f = self.frames[idx].as_mut().expect("mapped frame");
            f.data = data;
            f.dirty = dirty;
            f.uncommitted = false;
            return;
        }
        let frame = Frame {
            page_no,
            data,
            dirty,
            uncommitted: false,
            referenced: true,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.frames[i] = Some(frame);
                i
            }
            None => {
                self.frames.push(Some(frame));
                self.frames.len() - 1
            }
        };
        self.map.insert(page_no, idx);
    }

    /// Evicts frames until the pool is back within capacity — called after
    /// commit, when a transaction whose working set exceeded the pool has
    /// just made its frames evictable. Returns dirty evictees for
    /// write-back.
    pub fn shrink_to_capacity(&mut self) -> Vec<(u32, Vec<u8>)> {
        let mut writebacks = Vec::new();
        while self.map.len() > self.capacity {
            let Some(victim) = self.pick_victim() else {
                break;
            };
            let f = self.frames[victim].take().expect("victim frame");
            self.map.remove(&f.page_no);
            self.free_slots.push(victim);
            self.counters.evictions += 1;
            if f.dirty {
                writebacks.push((f.page_no, f.data));
            }
        }
        writebacks
    }

    /// Drops a page from the pool (rollback of a freshly allocated page).
    pub fn remove(&mut self, page_no: u32) {
        if let Some(idx) = self.map.remove(&page_no) {
            self.frames[idx] = None;
            self.free_slots.push(idx);
        }
    }

    /// Returns copies of all dirty committed frames and marks them clean;
    /// the checkpoint writes them to the database file. On checkpoint
    /// failure the caller re-dirties them via [`BufferPool::redirty`].
    pub fn take_dirty_committed(&mut self) -> Vec<(u32, Vec<u8>)> {
        let mut out = Vec::new();
        for f in self.frames.iter_mut().flatten() {
            if f.dirty && !f.uncommitted {
                f.dirty = false;
                out.push((f.page_no, f.data.clone()));
            }
        }
        out.sort_by_key(|(no, _)| *no);
        out
    }

    /// Re-marks pages dirty after a failed checkpoint flush.
    pub fn redirty(&mut self, pages: &[(u32, Vec<u8>)]) {
        for (no, _) in pages {
            if let Some(&idx) = self.map.get(no) {
                self.frames[idx].as_mut().expect("mapped frame").dirty = true;
            }
        }
    }

    /// Drops every frame without writing anything back — the crash half of
    /// kill-and-reopen tests.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.free_slots.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(b: u8) -> Vec<u8> {
        vec![b; 8]
    }

    #[test]
    fn hit_miss_accounting() {
        let mut bp = BufferPool::new(4);
        assert!(bp.get(1).is_none());
        bp.put(1, img(1), false, false);
        assert_eq!(bp.get(1).unwrap(), img(1).as_slice());
        let c = bp.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn eviction_at_capacity_prefers_unreferenced() {
        let mut bp = BufferPool::new(2);
        bp.put(1, img(1), false, false);
        bp.put(2, img(2), false, false);
        // Touch page 1 so its reference bit survives the first sweep.
        bp.get(1);
        bp.put(3, img(3), false, false);
        assert_eq!(bp.len(), 2);
        assert_eq!(bp.counters().evictions, 1);
        assert!(bp.peek(3).is_some());
    }

    #[test]
    fn dirty_committed_eviction_returns_writeback() {
        let mut bp = BufferPool::new(1);
        bp.put(1, img(1), true, false);
        let wb = bp.put(2, img(2), false, false);
        assert_eq!(wb, Some((1, img(1))));
    }

    #[test]
    fn uncommitted_frames_are_not_stolen() {
        let mut bp = BufferPool::new(2);
        bp.put(1, img(1), true, true);
        bp.put(2, img(2), true, true);
        assert!(bp.put(3, img(3), true, true).is_none());
        assert_eq!(bp.len(), 3, "pool grows rather than steal uncommitted");
        assert_eq!(bp.counters().evictions, 0);
        bp.commit_all();
        bp.put(4, img(4), false, false);
        assert_eq!(bp.counters().evictions, 1, "evictable after commit");
    }

    #[test]
    fn take_dirty_committed_clears_and_redirty_restores() {
        let mut bp = BufferPool::new(4);
        bp.put(1, img(1), true, false);
        bp.put(2, img(2), false, false);
        bp.put(3, img(3), true, true);
        let dirty = bp.take_dirty_committed();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 1);
        assert!(bp.take_dirty_committed().is_empty());
        bp.redirty(&dirty);
        assert_eq!(bp.take_dirty_committed().len(), 1);
    }

    #[test]
    fn clear_drops_everything() {
        let mut bp = BufferPool::new(4);
        bp.put(1, img(1), true, false);
        bp.clear();
        assert!(bp.is_empty());
        assert!(bp.peek(1).is_none());
    }
}
