//! The pager: paged file + buffer pool + WAL, with per-operation
//! transactions.
//!
//! Every mutating storage operation runs as one pager transaction: pages
//! staged via [`Pager::write_page`] live only in the buffer pool (pinned
//! un-evictable) until [`Pager::commit`] seals them, appends their images
//! plus a commit record to the WAL and fsyncs. Only then do they become
//! eligible to reach the database file — via eviction write-back or a
//! [`Pager::checkpoint`], both of which are safe at any point after commit
//! because redo from full-page images is idempotent.
//!
//! Recovery invariant: the database file plus the committed prefix of the
//! WAL always reconstructs the state as of the last successful commit.
//! [`Pager::open`] replays committed WAL batches into the file (repairing
//! any torn page from a crashed checkpoint), fsyncs, and truncates the log.
//!
//! Fault sites (see [`crate::fault`]): `storage.wal.fsync` (commit
//! durability), `storage.pager.write` (torn page write), and
//! `storage.pager.read` (transient read error). All surface as the
//! retryable [`StorageError::FaultInjected`].

pub mod buffer_pool;
pub mod page;
pub mod wal;

use crate::error::StorageError;
use crate::fault::{self, FaultKind};
use crate::io::IoStats;
use buffer_pool::{BufferPool, PoolCounters};
use page::{Page, PageType, DISK_PAGE_SIZE};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wal::{Wal, WalCounters};

/// Fault site: physical page write to the database file (torn writes).
pub const SITE_PAGER_WRITE: &str = "storage.pager.write";
/// Fault site: physical page read from the database file.
pub const SITE_PAGER_READ: &str = "storage.pager.read";

const MAGIC: u64 = 0x4149_4d5f_5041_4745; // "AIM_PAGE"
const VERSION: u32 = 1;

/// Tuning knobs for a [`Pager`].
#[derive(Debug, Clone, Copy)]
pub struct PagerOptions {
    /// Buffer pool capacity in frames (16 KiB each).
    pub pool_frames: usize,
    /// Auto-checkpoint once the WAL exceeds this many bytes.
    pub wal_autocheckpoint_bytes: u64,
}

impl Default for PagerOptions {
    fn default() -> Self {
        Self {
            pool_frames: 256,
            wal_autocheckpoint_bytes: 4 << 20,
        }
    }
}

/// File metadata held on page 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Pages in the file, including page 0.
    pub page_count: u32,
    /// Head of the free-page chain (0 = empty).
    pub freelist: u32,
    /// First page of the catalog blob chain (0 = no catalog yet).
    pub catalog_root: u32,
}

/// Physical-I/O and recovery counters for one pager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerCounters {
    /// Pages physically read from the database file.
    pub pages_read: u64,
    /// Pages physically written to the database file.
    pub pages_written: u64,
    /// Successful checkpoints.
    pub checkpoints: u64,
    /// Auto-checkpoints that failed (state stays WAL-protected).
    pub checkpoint_failures: u64,
    /// Committed WAL batches applied by recovery at open.
    pub recovered_batches: u64,
    /// WAL records those batches contained.
    pub recovered_records: u64,
    /// Torn WAL tails discarded at open.
    pub torn_tails_discarded: u64,
    /// Page reads that failed checksum verification.
    pub checksum_failures: u64,
}

/// Durable before-state of a page touched by the open transaction.
#[derive(Debug)]
enum Before {
    Existing { data: Vec<u8>, dirty: bool },
    Fresh,
}

#[derive(Debug)]
struct Tx {
    touched: BTreeMap<u32, Before>,
    meta_before: Meta,
}

/// The pager.
#[derive(Debug)]
pub struct Pager {
    file: File,
    dir: PathBuf,
    pool: BufferPool,
    wal: Wal,
    meta: Meta,
    next_lsn: u64,
    tx: Option<Tx>,
    opts: PagerOptions,
    counters: PagerCounters,
}

fn io_err(op: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("pager {op}: {e}"))
}

fn db_path(dir: &Path) -> PathBuf {
    dir.join("aim.db")
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("aim.wal")
}

impl Pager {
    /// Opens (creating if needed) the database under directory `dir`,
    /// running crash recovery first: committed WAL batches are replayed
    /// into `aim.db`, the file is fsynced and the log truncated.
    pub fn open(dir: &Path, opts: PagerOptions) -> Result<Self, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("mkdir", e))?;
        let mut counters = PagerCounters::default();
        let mut next_lsn = 1;

        let replayed = wal::replay(&wal_path(dir))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(db_path(dir))
            .map_err(|e| io_err("open", e))?;

        if !replayed.batches.is_empty() {
            for (lsn, pages) in &replayed.batches {
                next_lsn = next_lsn.max(lsn + 1);
                for (no, img) in pages {
                    write_at(&mut file, *no, img)?;
                    counters.pages_written += 1;
                }
                counters.recovered_batches += 1;
            }
            counters.recovered_records = replayed.records;
            file.sync_data().map_err(|e| io_err("fsync", e))?;
        }
        if replayed.torn_tail {
            counters.torn_tails_discarded += 1;
        }

        let len = file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        let meta = if len == 0 {
            let meta = Meta {
                page_count: 1,
                freelist: 0,
                catalog_root: 0,
            };
            let mut p = meta_page(&meta);
            p.seal();
            write_at(&mut file, 0, &p.data)?;
            counters.pages_written += 1;
            file.sync_data().map_err(|e| io_err("fsync", e))?;
            meta
        } else {
            let img = read_at(&mut file, 0)?;
            counters.pages_read += 1;
            let p = Page::from_bytes(img, 0)?;
            parse_meta(&p)?
        };

        let mut wal = Wal::open(&wal_path(dir))?;
        if wal.size() > 0 {
            // Everything committed is now in the file; the log restarts.
            wal.truncate()?;
        }

        Ok(Self {
            file,
            dir: dir.to_path_buf(),
            pool: BufferPool::new(opts.pool_frames),
            wal,
            meta,
            next_lsn,
            tx: None,
            opts,
            counters,
        })
    }

    /// Directory holding `aim.db` / `aim.wal`.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn meta(&self) -> Meta {
        self.meta
    }

    /// Updates the catalog root pointer (takes effect at commit).
    pub fn set_catalog_root(&mut self, no: u32) {
        self.begin();
        self.meta.catalog_root = no;
    }

    pub fn counters(&self) -> PagerCounters {
        self.counters
    }

    pub fn pool_counters(&self) -> PoolCounters {
        self.pool.counters()
    }

    pub fn wal_counters(&self) -> WalCounters {
        let mut c = self.wal.counters;
        c.records_replayed = self.counters.recovered_records;
        c.torn_tails_discarded = self.counters.torn_tails_discarded;
        c
    }

    /// True while a transaction has staged writes.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    fn begin(&mut self) -> &mut Tx {
        let meta = self.meta;
        self.tx.get_or_insert_with(|| Tx {
            touched: BTreeMap::new(),
            meta_before: meta,
        })
    }

    // ---------------------------------------------------------------- reads

    /// Reads a page, charging `io`: one logical page touch always, plus a
    /// physical fault (`pages_faulted`) when the buffer pool misses and the
    /// image comes from the database file (with checksum verification).
    pub fn read_page(&mut self, no: u32, io: &mut IoStats) -> Result<Page, StorageError> {
        io.pages_read += 1;
        if let Some(data) = self.pool.get(no) {
            return Ok(Page { data: data.to_vec() });
        }
        io.pages_faulted += 1;
        if let Some(FaultKind::Fail) = fault::hit(SITE_PAGER_READ) {
            return Err(StorageError::FaultInjected {
                site: SITE_PAGER_READ.to_string(),
            });
        }
        let img = read_at(&mut self.file, no)?;
        self.counters.pages_read += 1;
        let page = match Page::from_bytes(img, no) {
            Ok(p) => p,
            Err(e) => {
                self.counters.checksum_failures += 1;
                return Err(e);
            }
        };
        if let Some((evicted_no, evicted)) = self.pool.put(no, page.data.clone(), false, false) {
            self.write_back(evicted_no, evicted)?;
        }
        Ok(page)
    }

    // --------------------------------------------------------------- writes

    /// Stages a page write into the open transaction. The image lives only
    /// in the buffer pool (un-evictable) until [`Pager::commit`].
    pub fn write_page(&mut self, no: u32, page: Page) -> Result<(), StorageError> {
        self.record_before(no)?;
        if let Some((evicted_no, evicted)) = self.pool.put(no, page.data, true, true) {
            self.write_back(evicted_no, evicted)?;
        }
        Ok(())
    }

    fn record_before(&mut self, no: u32) -> Result<(), StorageError> {
        self.begin();
        let already = self
            .tx
            .as_ref()
            .expect("begin() opened a tx")
            .touched
            .contains_key(&no);
        if already {
            return Ok(());
        }
        let before = if let Some(data) = self.pool.peek(no) {
            Before::Existing {
                data: data.to_vec(),
                dirty: self.pool.is_dirty(no),
            }
        } else if no < self.tx.as_ref().expect("open tx").meta_before.page_count {
            let img = read_at(&mut self.file, no)?;
            self.counters.pages_read += 1;
            Before::Existing {
                data: img,
                dirty: false,
            }
        } else {
            Before::Fresh
        };
        self.tx
            .as_mut()
            .expect("open tx")
            .touched
            .insert(no, before);
        Ok(())
    }

    /// Allocates a page: pops the freelist or extends the file. The page
    /// is only durably allocated if the transaction commits.
    pub fn allocate_page(&mut self) -> Result<u32, StorageError> {
        self.begin();
        if self.meta.freelist != 0 {
            let no = self.meta.freelist;
            let mut scratch = IoStats::new();
            let free = self.read_page(no, &mut scratch)?;
            self.record_before(no)?;
            self.meta.freelist = free.next_page();
            return Ok(no);
        }
        let no = self.meta.page_count;
        self.meta.page_count += 1;
        self.record_before(no)?;
        Ok(no)
    }

    /// Returns a page to the freelist.
    pub fn free_page(&mut self, no: u32) -> Result<(), StorageError> {
        self.begin();
        let mut p = Page::new(PageType::Free);
        p.set_next_page(self.meta.freelist);
        self.write_page(no, p)?;
        self.meta.freelist = no;
        Ok(())
    }

    // ----------------------------------------------------------- tx control

    /// Commits the open transaction: seals every touched page, appends the
    /// batch + commit record to the WAL and fsyncs. On failure the
    /// transaction is rolled back (pool and meta restored to before-state)
    /// and the error returned — the caller's in-memory structures must not
    /// be updated.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        let Some(tx) = self.tx.as_ref() else {
            return Ok(());
        };
        let meta_changed = self.meta != tx.meta_before;
        if tx.touched.is_empty() && !meta_changed {
            self.tx = None;
            return Ok(());
        }
        if meta_changed {
            let p = meta_page(&self.meta);
            self.write_page(0, p)?;
        }
        let lsn = self.next_lsn;
        let touched: Vec<u32> = self
            .tx
            .as_ref()
            .expect("open tx")
            .touched
            .keys()
            .copied()
            .collect();
        // Seal in place so the pool image, the WAL image and any future
        // file write-back are bit-identical.
        let mut images: Vec<(u32, Vec<u8>)> = Vec::with_capacity(touched.len());
        for no in touched {
            let data = self
                .pool
                .peek(no)
                .expect("staged page resident in pool")
                .to_vec();
            let mut page = Page { data };
            page.set_lsn(lsn);
            page.seal();
            self.pool.restore(no, page.data.clone(), true);
            images.push((no, page.data));
        }
        let image_refs: Vec<(u32, &[u8])> =
            images.iter().map(|(no, d)| (*no, d.as_slice())).collect();
        if let Err(e) = self.wal.append_commit(lsn, &image_refs) {
            self.rollback();
            return Err(e);
        }
        self.pool.commit_all();
        self.next_lsn += 1;
        self.tx = None;
        // A transaction larger than the pool grew it past capacity; now
        // that its pages are WAL-protected, shed the excess.
        for (no, data) in self.pool.shrink_to_capacity() {
            self.write_back(no, data)?;
        }
        if self.wal.size() > self.opts.wal_autocheckpoint_bytes {
            // Auto-checkpoint failure is non-fatal: the WAL keeps growing
            // and keeps protecting every committed page.
            if self.checkpoint().is_err() {
                self.counters.checkpoint_failures += 1;
            }
        }
        Ok(())
    }

    /// Discards the open transaction, restoring every touched page and the
    /// metadata to their pre-transaction state.
    pub fn rollback(&mut self) {
        let Some(tx) = self.tx.take() else {
            return;
        };
        for (no, before) in tx.touched {
            match before {
                Before::Existing { data, dirty } => self.pool.restore(no, data, dirty),
                Before::Fresh => self.pool.remove(no),
            }
        }
        self.meta = tx.meta_before;
    }

    /// Flushes every dirty committed page to the database file, fsyncs,
    /// and truncates the WAL. Refused while a transaction is open.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        if self.tx.is_some() {
            return Err(StorageError::Io(
                "checkpoint refused: transaction in flight".into(),
            ));
        }
        let dirty = self.pool.take_dirty_committed();
        if dirty.is_empty() && self.wal.size() == 0 {
            return Ok(());
        }
        for (no, data) in &dirty {
            if let Err(e) = self.write_file(*no, data) {
                self.pool.redirty(&dirty);
                return Err(e);
            }
        }
        if let Err(e) = self.file.sync_data().map_err(|e| io_err("fsync", e)) {
            self.pool.redirty(&dirty);
            return Err(e);
        }
        self.wal.truncate()?;
        self.counters.checkpoints += 1;
        Ok(())
    }

    /// Models a process crash: every buffered frame and any staged
    /// transaction vanish; nothing is flushed. The pager must not be used
    /// afterwards except to drop it — reopen the directory to recover.
    pub fn simulate_crash(&mut self) {
        self.pool.clear();
        self.tx = None;
    }

    // ------------------------------------------------------------ internals

    /// Eviction write-back of a committed dirty page. On failure the frame
    /// is restored into the pool (growing it) so no committed data is lost.
    fn write_back(&mut self, no: u32, data: Vec<u8>) -> Result<(), StorageError> {
        if let Err(e) = self.write_file(no, &data) {
            self.pool.restore(no, data, true);
            return Err(e);
        }
        Ok(())
    }

    /// Physical page write with the torn-write fault gate: an injected
    /// failure writes only the first half of the page, exactly what a
    /// crashed kernel leaves behind.
    fn write_file(&mut self, no: u32, data: &[u8]) -> Result<(), StorageError> {
        if let Some(FaultKind::Fail) = fault::hit(SITE_PAGER_WRITE) {
            let off = u64::from(no) * DISK_PAGE_SIZE as u64;
            let _ = self.file.seek(SeekFrom::Start(off));
            let _ = self.file.write_all(&data[..DISK_PAGE_SIZE / 2]);
            return Err(StorageError::FaultInjected {
                site: SITE_PAGER_WRITE.to_string(),
            });
        }
        write_at(&mut self.file, no, data)?;
        self.counters.pages_written += 1;
        Ok(())
    }
}

fn write_at(file: &mut File, no: u32, data: &[u8]) -> Result<(), StorageError> {
    debug_assert_eq!(data.len(), DISK_PAGE_SIZE);
    let off = u64::from(no) * DISK_PAGE_SIZE as u64;
    file.seek(SeekFrom::Start(off)).map_err(|e| io_err("seek", e))?;
    file.write_all(data).map_err(|e| io_err("write", e))
}

fn read_at(file: &mut File, no: u32) -> Result<Vec<u8>, StorageError> {
    let off = u64::from(no) * DISK_PAGE_SIZE as u64;
    file.seek(SeekFrom::Start(off)).map_err(|e| io_err("seek", e))?;
    let mut buf = vec![0u8; DISK_PAGE_SIZE];
    file.read_exact(&mut buf).map_err(|e| io_err("read", e))?;
    Ok(buf)
}

fn meta_page(meta: &Meta) -> Page {
    let mut cell = Vec::with_capacity(24);
    cell.extend_from_slice(&MAGIC.to_le_bytes());
    cell.extend_from_slice(&VERSION.to_le_bytes());
    cell.extend_from_slice(&meta.page_count.to_le_bytes());
    cell.extend_from_slice(&meta.freelist.to_le_bytes());
    cell.extend_from_slice(&meta.catalog_root.to_le_bytes());
    let mut p = Page::new(PageType::Meta);
    p.set_cells(std::slice::from_ref(&cell));
    p
}

fn parse_meta(p: &Page) -> Result<Meta, StorageError> {
    let corrupt = |d: &str| StorageError::Corrupt { detail: d.into() };
    if p.page_type()? != PageType::Meta || p.nslots() != 1 {
        return Err(corrupt("page 0 is not a meta page"));
    }
    let cell = p.cell(0);
    if cell.len() != 24 {
        return Err(corrupt("meta cell malformed"));
    }
    let magic = u64::from_le_bytes(cell[..8].try_into().unwrap());
    if magic != MAGIC {
        return Err(corrupt("bad magic: not an aim-storage file"));
    }
    let version = u32::from_le_bytes(cell[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(&format!("unsupported file version {version}")));
    }
    Ok(Meta {
        page_count: u32::from_le_bytes(cell[12..16].try_into().unwrap()),
        freelist: u32::from_le_bytes(cell[16..20].try_into().unwrap()),
        catalog_root: u32::from_le_bytes(cell[20..24].try_into().unwrap()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "aim-pager-test-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn data_page(fill: u8) -> Page {
        let mut p = Page::new(PageType::Heap);
        p.add_cell(&[fill; 64]).unwrap();
        p
    }

    #[test]
    fn create_write_commit_reopen() {
        let dir = tmp("roundtrip");
        {
            let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
            let no = pg.allocate_page().unwrap();
            assert_eq!(no, 1);
            pg.write_page(no, data_page(7)).unwrap();
            pg.commit().unwrap();
            pg.checkpoint().unwrap();
        }
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        assert_eq!(pg.meta().page_count, 2);
        let mut io = IoStats::new();
        let p = pg.read_page(1, &mut io).unwrap();
        assert_eq!(p.cell(0), vec![7u8; 64].as_slice());
        assert_eq!(io.pages_read, 1);
        assert_eq!(io.pages_faulted, 1);
    }

    #[test]
    fn uncheckpointed_commit_recovers_from_wal() {
        let dir = tmp("wal-recovery");
        {
            let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
            let no = pg.allocate_page().unwrap();
            pg.write_page(no, data_page(3)).unwrap();
            pg.commit().unwrap();
            // Crash: no checkpoint, pool dropped.
            pg.simulate_crash();
        }
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        assert!(pg.counters().recovered_batches >= 1);
        assert_eq!(pg.meta().page_count, 2, "meta recovered from WAL");
        let mut io = IoStats::new();
        let p = pg.read_page(1, &mut io).unwrap();
        assert_eq!(p.cell(0), vec![3u8; 64].as_slice());
    }

    #[test]
    fn rollback_restores_pool_and_meta() {
        let dir = tmp("rollback");
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        let no = pg.allocate_page().unwrap();
        pg.write_page(no, data_page(1)).unwrap();
        pg.commit().unwrap();
        let count = pg.meta().page_count;

        // Stage: overwrite page 1, allocate page 2, then roll back.
        let fresh = pg.allocate_page().unwrap();
        pg.write_page(no, data_page(9)).unwrap();
        pg.write_page(fresh, data_page(8)).unwrap();
        pg.rollback();
        assert_eq!(pg.meta().page_count, count, "allocation rolled back");
        let mut io = IoStats::new();
        let p = pg.read_page(no, &mut io).unwrap();
        assert_eq!(p.cell(0), vec![1u8; 64].as_slice(), "old content restored");
    }

    #[test]
    fn freelist_reuses_pages() {
        let dir = tmp("freelist");
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        let a = pg.allocate_page().unwrap();
        let b = pg.allocate_page().unwrap();
        pg.write_page(a, data_page(1)).unwrap();
        pg.write_page(b, data_page(2)).unwrap();
        pg.commit().unwrap();
        pg.free_page(a).unwrap();
        pg.commit().unwrap();
        let c = pg.allocate_page().unwrap();
        assert_eq!(c, a, "freed page is recycled");
        pg.write_page(c, data_page(3)).unwrap();
        pg.commit().unwrap();
        assert_eq!(pg.meta().freelist, 0);
    }

    #[test]
    fn tiny_pool_evicts_and_stays_correct() {
        let dir = tmp("evict");
        let opts = PagerOptions {
            pool_frames: 2,
            ..Default::default()
        };
        let mut pg = Pager::open(&dir, opts).unwrap();
        let pages: Vec<u32> = (0..8)
            .map(|i| {
                let no = pg.allocate_page().unwrap();
                pg.write_page(no, data_page(i as u8)).unwrap();
                no
            })
            .collect();
        pg.commit().unwrap();
        let mut io = IoStats::new();
        for (i, &no) in pages.iter().enumerate() {
            let p = pg.read_page(no, &mut io).unwrap();
            assert_eq!(p.cell(0), vec![i as u8; 64].as_slice());
        }
        assert!(pg.pool_counters().evictions > 0, "tiny pool must evict");
        assert!(io.pages_faulted > 0, "evicted pages fault back in");
    }

    #[test]
    fn torn_checkpoint_write_repaired_by_recovery() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let dir = tmp("torn-checkpoint");
        {
            let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
            let no = pg.allocate_page().unwrap();
            pg.write_page(no, data_page(5)).unwrap();
            pg.commit().unwrap();
            crate::fault::arm(crate::fault::FaultPlan::new(3).fail(SITE_PAGER_WRITE, 0, 1));
            let err = pg.checkpoint().unwrap_err();
            assert!(err.is_injected(), "{err}");
            crate::fault::disarm();
            // The page in the file is now torn, but the WAL still holds it.
            pg.simulate_crash();
        }
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        let mut io = IoStats::new();
        let p = pg.read_page(1, &mut io).unwrap();
        assert_eq!(p.cell(0), vec![5u8; 64].as_slice(), "torn page repaired");
        assert_eq!(pg.counters().checksum_failures, 0);
    }

    #[test]
    fn wal_fsync_fault_rolls_back_commit() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let dir = tmp("fsync-fault");
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        let no = pg.allocate_page().unwrap();
        pg.write_page(no, data_page(1)).unwrap();
        pg.commit().unwrap();

        crate::fault::arm(crate::fault::FaultPlan::new(3).fail(wal::SITE_WAL_FSYNC, 0, 1));
        pg.write_page(no, data_page(2)).unwrap();
        let err = pg.commit().unwrap_err();
        crate::fault::disarm();
        assert!(err.is_injected(), "{err}");
        assert!(!pg.in_tx(), "failed commit leaves no open tx");
        let mut io = IoStats::new();
        let p = pg.read_page(no, &mut io).unwrap();
        assert_eq!(p.cell(0), vec![1u8; 64].as_slice(), "old value intact");
        // Retry works.
        pg.write_page(no, data_page(2)).unwrap();
        pg.commit().unwrap();
    }

    #[test]
    fn read_fault_is_transient() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let dir = tmp("read-fault");
        let opts = PagerOptions {
            pool_frames: 1,
            ..Default::default()
        };
        let mut pg = Pager::open(&dir, opts).unwrap();
        let a = pg.allocate_page().unwrap();
        let b = pg.allocate_page().unwrap();
        pg.write_page(a, data_page(1)).unwrap();
        pg.write_page(b, data_page(2)).unwrap();
        pg.commit().unwrap();
        pg.checkpoint().unwrap();
        let mut io = IoStats::new();
        pg.read_page(b, &mut io).unwrap(); // page a no longer pooled
        crate::fault::arm(crate::fault::FaultPlan::new(3).fail(SITE_PAGER_READ, 0, 1));
        let err = pg.read_page(a, &mut io).unwrap_err();
        assert!(err.is_injected(), "{err}");
        let p = pg.read_page(a, &mut io).unwrap();
        crate::fault::disarm();
        assert_eq!(p.cell(0), vec![1u8; 64].as_slice(), "retry succeeds");
    }

    #[test]
    fn auto_checkpoint_truncates_wal() {
        let dir = tmp("auto-checkpoint");
        let opts = PagerOptions {
            pool_frames: 64,
            wal_autocheckpoint_bytes: 2 * DISK_PAGE_SIZE as u64,
        };
        let mut pg = Pager::open(&dir, opts).unwrap();
        for i in 0..8 {
            let no = pg.allocate_page().unwrap();
            pg.write_page(no, data_page(i)).unwrap();
            pg.commit().unwrap();
        }
        assert!(pg.counters().checkpoints > 0, "auto-checkpoint fired");
        assert!(pg.wal_counters().bytes_written > 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let dir = tmp("empty-commit");
        let mut pg = Pager::open(&dir, PagerOptions::default()).unwrap();
        pg.commit().unwrap();
        assert_eq!(pg.wal_counters().fsyncs, 0);
    }
}
