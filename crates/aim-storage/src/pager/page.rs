//! Slotted pages: the fixed-size unit of disk layout.
//!
//! Every page is [`DISK_PAGE_SIZE`] bytes. A 32-byte header is followed by a
//! slot directory growing downward (4 bytes per slot: cell offset + length)
//! while cell payloads grow upward from the page end. The first four header
//! bytes hold an FNV-1a checksum over the rest of the page, written when a
//! page is *sealed* before hitting the WAL or the database file and
//! verified on every read — a torn write is detected as a checksum
//! mismatch, never silently served.
//!
//! Layout of the header:
//!
//! ```text
//! [0..4)   checksum (fnv1a-32 of bytes 4..)
//! [4]      page type
//! [5]      flags (reserved)
//! [6..8)   slot count
//! [8..10)  cell area start (lowest cell byte)
//! [10..12) fragmented (tombstoned) bytes, reclaimable by compaction
//! [12..20) lsn of the last transaction that wrote the page
//! [20..24) next page in chain (heap chain / leaf chain / freelist)
//! [24..28) aux (B+-tree internal nodes: rightmost child)
//! [28..32) reserved
//! ```

use crate::error::StorageError;

/// On-disk page size. Deliberately equal to the simulated
/// [`crate::io::PAGE_SIZE`] so estimated and measured page counts share
/// units.
pub const DISK_PAGE_SIZE: usize = 16 * 1024;
/// Bytes of fixed header at the start of every page.
pub const PAGE_HEADER: usize = 32;
/// Bytes per slot directory entry.
pub const SLOT_SIZE: usize = 4;
/// Largest cell a page can hold (one slot, empty directory).
pub const MAX_CELL: usize = DISK_PAGE_SIZE - PAGE_HEADER - SLOT_SIZE;

/// What a page stores; byte 4 of the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// On the freelist, content meaningless.
    Free = 0,
    /// Page 0: file metadata.
    Meta = 1,
    /// Table heap page: cells are encoded rows, slots are stable row ids.
    Heap = 2,
    /// B+-tree leaf: cells are (key, value) pairs in slot order.
    Leaf = 3,
    /// B+-tree internal node: cells are (separator key, child) pairs.
    Internal = 4,
    /// Catalog blob chunk.
    Catalog = 5,
}

impl PageType {
    fn from_u8(b: u8) -> Result<Self, StorageError> {
        Ok(match b {
            0 => PageType::Free,
            1 => PageType::Meta,
            2 => PageType::Heap,
            3 => PageType::Leaf,
            4 => PageType::Internal,
            5 => PageType::Catalog,
            t => {
                return Err(StorageError::Corrupt {
                    detail: format!("unknown page type {t}"),
                })
            }
        })
    }
}

/// FNV-1a over a byte slice; the page and WAL checksum.
pub fn checksum32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// One slotted page, held in memory as its full byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    pub data: Vec<u8>,
}

fn rd16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([d[at], d[at + 1]])
}

fn wr16(d: &mut [u8], at: usize, v: u16) {
    d[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn rd32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(d[at..at + 4].try_into().unwrap())
}

fn wr32(d: &mut [u8], at: usize, v: u32) {
    d[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

impl Page {
    /// A fresh, empty page of the given type.
    pub fn new(ty: PageType) -> Self {
        let mut data = vec![0u8; DISK_PAGE_SIZE];
        data[4] = ty as u8;
        wr16(&mut data, 8, DISK_PAGE_SIZE as u16);
        Self { data }
    }

    /// Wraps a page image read from disk, verifying its checksum.
    pub fn from_bytes(data: Vec<u8>, page_no: u32) -> Result<Self, StorageError> {
        if data.len() != DISK_PAGE_SIZE {
            return Err(StorageError::Corrupt {
                detail: format!("page {page_no}: short read of {} bytes", data.len()),
            });
        }
        let stored = rd32(&data, 0);
        let actual = checksum32(&data[4..]);
        if stored != actual {
            return Err(StorageError::Corrupt {
                detail: format!(
                    "page {page_no}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x}) — torn write"
                ),
            });
        }
        PageType::from_u8(data[4])?;
        Ok(Self { data })
    }

    /// Recomputes and stores the checksum. Must be called before the image
    /// is written to the WAL or the database file.
    pub fn seal(&mut self) {
        let sum = checksum32(&self.data[4..]);
        wr32(&mut self.data, 0, sum);
    }

    pub fn page_type(&self) -> Result<PageType, StorageError> {
        PageType::from_u8(self.data[4])
    }

    pub fn set_page_type(&mut self, ty: PageType) {
        self.data[4] = ty as u8;
    }

    pub fn nslots(&self) -> usize {
        rd16(&self.data, 6) as usize
    }

    fn cell_start(&self) -> usize {
        rd16(&self.data, 8) as usize
    }

    fn frag(&self) -> usize {
        rd16(&self.data, 10) as usize
    }

    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[12..20].try_into().unwrap())
    }

    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[12..20].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Next page in this page's chain (0 = end of chain; page 0 is always
    /// the meta page, so 0 is unambiguous as a sentinel).
    pub fn next_page(&self) -> u32 {
        rd32(&self.data, 20)
    }

    pub fn set_next_page(&mut self, no: u32) {
        wr32(&mut self.data, 20, no);
    }

    /// Auxiliary pointer: the rightmost child of a B+-tree internal node.
    pub fn aux(&self) -> u32 {
        rd32(&self.data, 24)
    }

    pub fn set_aux(&mut self, no: u32) {
        wr32(&mut self.data, 24, no);
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let at = PAGE_HEADER + i * SLOT_SIZE;
        (rd16(&self.data, at) as usize, rd16(&self.data, at + 2) as usize)
    }

    fn set_slot(&mut self, i: usize, offset: usize, len: usize) {
        let at = PAGE_HEADER + i * SLOT_SIZE;
        wr16(&mut self.data, at, offset as u16);
        wr16(&mut self.data, at + 2, len as u16);
    }

    /// True if slot `i` holds no cell (tombstoned heap slot).
    pub fn is_tombstone(&self, i: usize) -> bool {
        self.slot(i).0 == 0
    }

    /// The cell at slot `i` (empty slice for tombstones).
    pub fn cell(&self, i: usize) -> &[u8] {
        let (off, len) = self.slot(i);
        if off == 0 {
            &[]
        } else {
            &self.data[off..off + len]
        }
    }

    /// Contiguous free bytes between the slot directory and the cell area.
    pub fn contiguous_free(&self) -> usize {
        self.cell_start() - (PAGE_HEADER + self.nslots() * SLOT_SIZE)
    }

    /// Total reclaimable free bytes (contiguous + fragmented).
    pub fn free_space(&self) -> usize {
        self.contiguous_free() + self.frag()
    }

    /// True if a cell of `len` bytes fits, reusing `reuse_slot` if given
    /// (otherwise a new slot directory entry is also needed).
    pub fn fits(&self, len: usize, reuse_slot: bool) -> bool {
        let need = len + if reuse_slot { 0 } else { SLOT_SIZE };
        self.free_space() >= need
    }

    /// Rewrites the cell area tightly packed, preserving slot numbering.
    pub fn compact(&mut self) {
        let n = self.nslots();
        let cells: Vec<(usize, Vec<u8>)> = (0..n)
            .filter(|&i| !self.is_tombstone(i))
            .map(|i| (i, self.cell(i).to_vec()))
            .collect();
        let mut top = DISK_PAGE_SIZE;
        for (i, bytes) in cells {
            top -= bytes.len();
            self.data[top..top + bytes.len()].copy_from_slice(&bytes);
            self.set_slot(i, top, bytes.len());
        }
        wr16(&mut self.data, 8, top as u16);
        wr16(&mut self.data, 10, 0);
    }

    fn place_cell(&mut self, bytes: &[u8]) -> usize {
        let top = self.cell_start() - bytes.len();
        self.data[top..top + bytes.len()].copy_from_slice(bytes);
        wr16(&mut self.data, 8, top as u16);
        top
    }

    /// Appends a cell into a fresh slot at the end of the directory,
    /// preferring to reuse a tombstoned slot (heap pages: row ids are slot
    /// numbers and must stay stable). Returns the slot index, or `None` if
    /// the cell does not fit.
    pub fn add_cell(&mut self, bytes: &[u8]) -> Option<usize> {
        let reuse = (0..self.nslots()).find(|&i| self.is_tombstone(i));
        if !self.fits(bytes.len(), reuse.is_some()) {
            return None;
        }
        let need = bytes.len() + if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < need {
            self.compact();
        }
        let off = self.place_cell(bytes);
        let i = match reuse {
            Some(i) => i,
            None => {
                let i = self.nslots();
                wr16(&mut self.data, 6, (i + 1) as u16);
                i
            }
        };
        self.set_slot(i, off, bytes.len());
        Some(i)
    }

    /// Tombstones slot `i`, keeping the directory entry (stable row ids).
    pub fn tombstone(&mut self, i: usize) {
        let (off, len) = self.slot(i);
        if off != 0 {
            let frag = self.frag() + len;
            wr16(&mut self.data, 10, frag as u16);
            self.set_slot(i, 0, 0);
        }
    }

    /// Replaces the cell in slot `i`. Returns false (page unchanged) if the
    /// new bytes do not fit.
    pub fn replace_cell(&mut self, i: usize, bytes: &[u8]) -> bool {
        let (off, len) = self.slot(i);
        if off != 0 && bytes.len() <= len {
            self.data[off..off + bytes.len()].copy_from_slice(bytes);
            let frag = self.frag() + (len - bytes.len());
            wr16(&mut self.data, 10, frag as u16);
            self.set_slot(i, off, bytes.len());
            return true;
        }
        // Tombstone first so its bytes count as reclaimable.
        let old = (off, len);
        self.tombstone(i);
        if !self.fits(bytes.len(), true) {
            // Roll the tombstone back.
            let frag = self.frag() - old.1;
            wr16(&mut self.data, 10, frag as u16);
            self.set_slot(i, old.0, old.1);
            return false;
        }
        if self.contiguous_free() < bytes.len() {
            self.compact();
        }
        let at = self.place_cell(bytes);
        self.set_slot(i, at, bytes.len());
        true
    }

    /// Replaces the entire slot directory and cell area with `cells`, in
    /// order. Used by the B+-tree, which rewrites nodes wholesale. Panics
    /// if the cells cannot fit (callers must check [`cells_fit`]).
    pub fn set_cells(&mut self, cells: &[Vec<u8>]) {
        assert!(cells_fit(cells), "cells overflow page");
        wr16(&mut self.data, 6, cells.len() as u16);
        wr16(&mut self.data, 10, 0);
        let mut top = DISK_PAGE_SIZE;
        // Clear the old cell area so identical logical content produces an
        // identical byte image (bit-identical recovery assertions).
        for b in &mut self.data[PAGE_HEADER..] {
            *b = 0;
        }
        for (i, bytes) in cells.iter().enumerate() {
            top -= bytes.len();
            self.data[top..top + bytes.len()].copy_from_slice(bytes);
            self.set_slot(i, top, bytes.len());
        }
        wr16(&mut self.data, 8, top as u16);
    }

    /// All non-tombstoned cells in slot order.
    pub fn cells(&self) -> Vec<Vec<u8>> {
        (0..self.nslots())
            .filter(|&i| !self.is_tombstone(i))
            .map(|i| self.cell(i).to_vec())
            .collect()
    }

    /// Bytes used by live cells plus their slots.
    pub fn used_bytes(&self) -> usize {
        (0..self.nslots())
            .filter(|&i| !self.is_tombstone(i))
            .map(|i| self.slot(i).1 + SLOT_SIZE)
            .sum()
    }
}

/// True if `cells` fit in a single (empty) page.
pub fn cells_fit(cells: &[Vec<u8>]) -> bool {
    let bytes: usize = cells.iter().map(|c| c.len() + SLOT_SIZE).sum();
    bytes <= DISK_PAGE_SIZE - PAGE_HEADER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new(PageType::Heap);
        assert_eq!(p.page_type().unwrap(), PageType::Heap);
        assert_eq!(p.nslots(), 0);
        assert_eq!(p.free_space(), DISK_PAGE_SIZE - PAGE_HEADER);
    }

    #[test]
    fn add_and_read_cells() {
        let mut p = Page::new(PageType::Heap);
        let a = p.add_cell(b"alpha").unwrap();
        let b = p.add_cell(b"bravo!").unwrap();
        assert_eq!(p.cell(a), b"alpha");
        assert_eq!(p.cell(b), b"bravo!");
        assert_eq!(p.nslots(), 2);
    }

    #[test]
    fn tombstone_reuses_slot_and_space() {
        let mut p = Page::new(PageType::Heap);
        let a = p.add_cell(b"first").unwrap();
        let _b = p.add_cell(b"second").unwrap();
        p.tombstone(a);
        assert!(p.is_tombstone(a));
        assert_eq!(p.cell(a), b"");
        let c = p.add_cell(b"third").unwrap();
        assert_eq!(c, a, "tombstoned slot is reused");
        assert_eq!(p.cell(c), b"third");
    }

    #[test]
    fn page_fills_then_rejects() {
        let mut p = Page::new(PageType::Heap);
        let cell = vec![7u8; 1000];
        let mut n = 0;
        while p.add_cell(&cell).is_some() {
            n += 1;
        }
        assert!(n >= 15, "16 KiB page should hold >= 15 KB of cells, got {n}");
        assert!(p.add_cell(&cell).is_none());
        // Small cells still fit in the remainder.
        assert!(p.add_cell(&[1, 2, 3]).is_some());
    }

    #[test]
    fn compaction_reclaims_fragmentation() {
        let mut p = Page::new(PageType::Heap);
        let big = vec![1u8; 3000];
        let mut slots = Vec::new();
        while let Some(s) = p.add_cell(&big) {
            slots.push(s);
        }
        // Free every other cell, then insert a cell larger than any
        // contiguous hole.
        for &s in slots.iter().step_by(2) {
            p.tombstone(s);
        }
        let huge = vec![2u8; 4000];
        let got = p.add_cell(&huge).expect("fits after compaction");
        assert_eq!(p.cell(got), huge.as_slice());
        // Survivors are intact.
        for &s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.cell(s), big.as_slice());
        }
    }

    #[test]
    fn replace_cell_grow_and_shrink() {
        let mut p = Page::new(PageType::Heap);
        let s = p.add_cell(b"mid-size-cell").unwrap();
        assert!(p.replace_cell(s, b"tiny"));
        assert_eq!(p.cell(s), b"tiny");
        assert!(p.replace_cell(s, b"much larger replacement cell"));
        assert_eq!(p.cell(s), b"much larger replacement cell");
        let too_big = vec![0u8; DISK_PAGE_SIZE];
        assert!(!p.replace_cell(s, &too_big));
        assert_eq!(p.cell(s), b"much larger replacement cell", "failed replace leaves cell");
    }

    #[test]
    fn seal_then_verify_roundtrip() {
        let mut p = Page::new(PageType::Leaf);
        p.add_cell(b"payload").unwrap();
        p.set_lsn(42);
        p.set_next_page(7);
        p.seal();
        let q = Page::from_bytes(p.data.clone(), 3).unwrap();
        assert_eq!(q.lsn(), 42);
        assert_eq!(q.next_page(), 7);
        assert_eq!(q.cell(0), b"payload");
    }

    #[test]
    fn torn_write_detected_by_checksum() {
        let mut p = Page::new(PageType::Leaf);
        p.add_cell(b"payload").unwrap();
        p.seal();
        let mut bytes = p.data.clone();
        // Simulate a torn write: second half of the page is stale zeros.
        for b in &mut bytes[DISK_PAGE_SIZE / 2..] {
            *b = 0;
        }
        match Page::from_bytes(bytes, 9) {
            Err(StorageError::Corrupt { detail }) => {
                assert!(detail.contains("page 9"), "{detail}");
                assert!(detail.contains("torn"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn set_cells_is_deterministic() {
        let cells = vec![b"aa".to_vec(), b"bbb".to_vec(), b"c".to_vec()];
        let mut p = Page::new(PageType::Leaf);
        p.add_cell(b"garbage-from-before").unwrap();
        p.set_cells(&cells);
        let mut q = Page::new(PageType::Leaf);
        q.set_cells(&cells);
        p.seal();
        q.seal();
        assert_eq!(p.data, q.data, "same cells, same bytes regardless of history");
        assert_eq!(p.cells(), cells);
    }
}
