//! Redo-only write-ahead log with full-page images.
//!
//! Every transaction appends one *batch*: the sealed after-image of every
//! page it touched, followed by a commit record, flushed with a single
//! `fsync`. Recovery replays committed batches in order into the database
//! file and discards any torn tail — a batch without its commit record
//! (crash mid-commit) is as if the transaction never happened. Checkpoints
//! truncate the log after the buffer pool's dirty pages have been flushed
//! and fsynced to the database file.
//!
//! Record framing: `[len u32][checksum u32][kind u8][lsn u64][payload]`
//! where `len` covers everything after the checksum and the checksum is
//! FNV-1a over those same bytes. A record that fails either check ends
//! replay (torn tail).

use super::page::{checksum32, DISK_PAGE_SIZE};
use crate::error::StorageError;
use crate::fault::{self, FaultKind};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

/// Fault site: the commit-time `fsync` of the log.
pub const SITE_WAL_FSYNC: &str = "storage.wal.fsync";

fn io_err(op: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("wal {op}: {e}"))
}

/// Cumulative WAL activity (telemetry: `storage.wal.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Bytes appended to the log.
    pub bytes_written: u64,
    /// `fsync` calls issued on the log file.
    pub fsyncs: u64,
    /// Committed records applied by recovery at open.
    pub records_replayed: u64,
    /// Torn tails discarded by recovery at open.
    pub torn_tails_discarded: u64,
}

/// The write half of the log, owned by the pager.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    size: u64,
    pub counters: WalCounters,
}

fn frame_record(kind: u8, lsn: u64, payload: &[u8], out: &mut Vec<u8>) {
    let body_len = 1 + 8 + payload.len();
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // checksum backpatched below
    out.push(kind);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum32(&out[start + 8..]);
    out[start + 4..start + 8].copy_from_slice(&sum.to_le_bytes());
}

impl Wal {
    /// Opens (creating if absent) the log for appending. Call only after
    /// [`replay`] has consumed any existing content.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let size = file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            size,
            counters: WalCounters::default(),
        })
    }

    /// Current log size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one committed transaction: all page images plus the commit
    /// record, then fsyncs. Nothing is durable until this returns `Ok`.
    ///
    /// The `storage.wal.fsync` fault site fires *before* the sync: the
    /// batch may be partially or fully buffered but is not durable, exactly
    /// the state a crashed commit leaves behind. Callers roll the
    /// transaction back; recovery discards the unsynced tail.
    pub fn append_commit(
        &mut self,
        lsn: u64,
        images: &[(u32, &[u8])],
    ) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(images.len() * (DISK_PAGE_SIZE + 32) + 32);
        for (page_no, data) in images {
            debug_assert_eq!(data.len(), DISK_PAGE_SIZE);
            let mut payload = Vec::with_capacity(4 + data.len());
            payload.extend_from_slice(&page_no.to_le_bytes());
            payload.extend_from_slice(data);
            frame_record(KIND_PAGE_IMAGE, lsn, &payload, &mut buf);
        }
        frame_record(KIND_COMMIT, lsn, &[], &mut buf);
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append", e))?;
        if let Some(FaultKind::Fail) = fault::hit(SITE_WAL_FSYNC) {
            // A failed fsync leaves the batch non-durable; model the
            // post-crash outcome by cutting the log back to its synced
            // prefix so a retried transaction appends cleanly.
            let _ = self.file.set_len(self.size);
            let _ = self.file.seek(SeekFrom::End(0));
            return Err(StorageError::FaultInjected {
                site: SITE_WAL_FSYNC.to_string(),
            });
        }
        self.file.sync_data().map_err(|e| io_err("fsync", e))?;
        self.size += buf.len() as u64;
        self.counters.bytes_written += buf.len() as u64;
        self.counters.fsyncs += 1;
        Ok(())
    }

    /// Truncates the log after a successful checkpoint.
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        self.file.set_len(0).map_err(|e| io_err("truncate", e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", e))?;
        self.file.sync_data().map_err(|e| io_err("fsync", e))?;
        self.size = 0;
        self.counters.fsyncs += 1;
        Ok(())
    }
}

/// One committed batch: `(lsn, full-page images as (page_no, bytes))`.
pub type ReplayBatch = (u64, Vec<(u32, Vec<u8>)>);

/// Result of scanning a log at open.
#[derive(Debug, Default)]
pub struct Replay {
    /// Committed batches in commit order.
    pub batches: Vec<ReplayBatch>,
    /// Total committed records (images + commits) replayed.
    pub records: u64,
    /// True if a torn tail (unterminated or corrupt trailing bytes) was
    /// discarded.
    pub torn_tail: bool,
}

/// Scans the log, returning every *committed* batch and flagging any torn
/// tail. Missing file = empty log.
pub fn replay(path: &Path) -> Result<Replay, StorageError> {
    let mut out = Replay::default();
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| io_err("read", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("open", e)),
    }
    let mut pos = 0usize;
    let mut pending: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut pending_records = 0u64;
    while pos < bytes.len() {
        let Some((kind, lsn, payload, next)) = read_record(&bytes, pos) else {
            out.torn_tail = true;
            break;
        };
        match kind {
            KIND_PAGE_IMAGE => {
                if payload.len() != 4 + DISK_PAGE_SIZE {
                    out.torn_tail = true;
                    break;
                }
                let page_no = u32::from_le_bytes(payload[..4].try_into().unwrap());
                pending.push((page_no, payload[4..].to_vec()));
                pending_records += 1;
            }
            KIND_COMMIT => {
                out.batches.push((lsn, std::mem::take(&mut pending)));
                out.records += pending_records + 1;
                pending_records = 0;
            }
            KIND_CHECKPOINT => {
                // A checkpoint record marks everything before it already
                // flushed; only batches after it need replay.
                out.batches.clear();
                out.records = 0;
            }
            _ => {
                out.torn_tail = true;
                break;
            }
        }
        pos = next;
    }
    if !pending.is_empty() {
        // Images without their commit: crash mid-commit. Discard.
        out.torn_tail = true;
    }
    Ok(out)
}

/// Parses one record at `pos`; `None` on any framing violation.
fn read_record(bytes: &[u8], pos: usize) -> Option<(u8, u64, &[u8], usize)> {
    if bytes.len() - pos < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    let body_start = pos + 8;
    if len < 9 || bytes.len() - body_start < len {
        return None;
    }
    let body = &bytes[body_start..body_start + len];
    if checksum32(body) != stored {
        return None;
    }
    let kind = body[0];
    let lsn = u64::from_le_bytes(body[1..9].try_into().unwrap());
    Some((kind, lsn, &body[9..], body_start + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aim-wal-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.wal")
    }

    fn page_img(fill: u8) -> Vec<u8> {
        vec![fill; DISK_PAGE_SIZE]
    }

    #[test]
    fn commit_then_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        let a = page_img(1);
        let b = page_img(2);
        wal.append_commit(1, &[(3, &a), (7, &b)]).unwrap();
        wal.append_commit(2, &[(3, &b)]).unwrap();
        assert_eq!(wal.counters.fsyncs, 2);

        let r = replay(&path).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.batches[0].0, 1);
        assert_eq!(r.batches[0].1.len(), 2);
        assert_eq!(r.batches[0].1[0], (3, a));
        assert_eq!(r.batches[1].1[0], (3, b));
        assert_eq!(r.records, 5);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("missing");
        let r = replay(&path.with_extension("nope")).unwrap();
        assert!(r.batches.is_empty());
        assert!(!r.torn_tail);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(1, &[(3, &page_img(1))]).unwrap();
        wal.append_commit(2, &[(4, &page_img(2))]).unwrap();
        drop(wal);
        // Chop bytes off the end: the second batch loses its commit.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.torn_tail, "truncated tail must be flagged");
        assert_eq!(r.batches.len(), 1, "only the complete batch survives");
        assert_eq!(r.batches[0].0, 1);
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(1, &[(3, &page_img(1))]).unwrap();
        let first_batch = std::fs::metadata(&path).unwrap().len();
        wal.append_commit(2, &[(4, &page_img(2))]).unwrap();
        drop(wal);
        // Flip a byte inside the second batch's page image.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = first_batch as usize + 100;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.batches.len(), 1);
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(1, &[(3, &page_img(1))]).unwrap();
        assert!(wal.size() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.size(), 0);
        let r = replay(&path).unwrap();
        assert!(r.batches.is_empty());
        assert!(!r.torn_tail);
    }

    #[test]
    fn injected_fsync_failure_keeps_synced_prefix() {
        let _g = crate::fault::tests::lock();
        crate::fault::disarm();
        let path = tmp("fsync-fault");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(1, &[(3, &page_img(1))]).unwrap();
        crate::fault::arm(crate::fault::FaultPlan::new(5).fail(SITE_WAL_FSYNC, 0, 1));
        let err = wal
            .append_commit(2, &[(4, &page_img(2))])
            .unwrap_err();
        crate::fault::disarm();
        assert!(err.is_injected(), "{err}");
        let r = replay(&path).unwrap();
        assert_eq!(r.batches.len(), 1, "unsynced batch gone");
        // The log is still usable afterwards.
        wal.append_commit(3, &[(5, &page_img(3))]).unwrap();
        assert_eq!(replay(&path).unwrap().batches.len(), 2);
    }
}
