//! Table schemas, column definitions and index definitions.

use crate::error::StorageError;
use std::fmt;

/// Column data types. Mirrors the DDL types accepted by `aim-sql`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Int,
    Float,
    Str,
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "BIGINT",
            ColumnType::Float => "DOUBLE",
            ColumnType::Str => "VARCHAR",
            ColumnType::Bool => "BOOLEAN",
        };
        write!(f, "{s}")
    }
}

/// A column in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    /// Average width in bytes, used by the cost model for variable-width
    /// types. Fixed-width types ignore this.
    pub avg_width: u32,
}

impl ColumnDef {
    /// A column with the default average width for its type.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        let avg_width = match ty {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Bool => 1,
            ColumnType::Str => 24,
        };
        Self {
            name: name.into(),
            ty,
            avg_width,
        }
    }

    /// Overrides the average width (for wide VARCHAR columns etc.).
    pub fn with_width(mut self, avg_width: u32) -> Self {
        self.avg_width = avg_width;
        self
    }
}

/// A table schema: ordered columns plus the clustered primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary key columns, in key order.
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Builds a schema, resolving primary-key column names to positions.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: &[&str],
    ) -> Result<Self, StorageError> {
        let name = name.into();
        if primary_key.is_empty() {
            return Err(StorageError::InvalidSchema(format!(
                "table {name}: primary key must be non-empty"
            )));
        }
        let mut pk = Vec::with_capacity(primary_key.len());
        for pk_col in primary_key {
            let pos = columns
                .iter()
                .position(|c| c.name == *pk_col)
                .ok_or_else(|| {
                    StorageError::UnknownColumn {
                        table: name.clone(),
                        column: (*pk_col).to_string(),
                    }
                })?;
            if pk.contains(&pos) {
                return Err(StorageError::InvalidSchema(format!(
                    "table {name}: duplicate primary key column {pk_col}"
                )));
            }
            pk.push(pos);
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(StorageError::InvalidSchema(format!(
                    "table {name}: duplicate column {}",
                    c.name
                )));
            }
        }
        Ok(Self {
            name,
            columns,
            primary_key: pk,
        })
    }

    /// Position of `column` in the row layout.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Column definition lookup by name.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Names of the primary key columns in key order.
    pub fn primary_key_names(&self) -> Vec<&str> {
        self.primary_key
            .iter()
            .map(|&i| self.columns[i].name.as_str())
            .collect()
    }

    /// Average full row width in bytes (sum of column widths + row header).
    pub fn avg_row_width(&self) -> u64 {
        const ROW_HEADER: u64 = 16;
        ROW_HEADER + self.columns.iter().map(|c| u64::from(c.avg_width)).sum::<u64>()
    }
}

/// Definition of a secondary index over a table.
///
/// Key columns are stored in order; entries implicitly carry the primary key
/// as a suffix (as InnoDB does), which is what makes an index *covering* for
/// a query when `key columns ∪ pk columns ⊇ referenced columns`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexDef {
    pub name: String,
    pub table: String,
    /// Key column names, in index order.
    pub columns: Vec<String>,
    pub unique: bool,
}

impl IndexDef {
    pub fn new(
        name: impl Into<String>,
        table: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            name: name.into(),
            table: table.into(),
            columns,
            unique: false,
        }
    }
}

impl fmt::Display for IndexDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})",
            self.table,
            self.columns.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("score", ColumnType::Float),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn resolves_primary_key_positions() {
        let s = schema();
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(s.primary_key_names(), vec!["id"]);
    }

    #[test]
    fn rejects_unknown_pk_column() {
        let err = TableSchema::new(
            "t",
            vec![ColumnDef::new("id", ColumnType::Int)],
            &["nope"],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn rejects_empty_pk() {
        let err =
            TableSchema::new("t", vec![ColumnDef::new("id", ColumnType::Int)], &[]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("id", ColumnType::Str),
            ],
            &["id"],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("score"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("name").unwrap().ty, ColumnType::Str);
    }

    #[test]
    fn row_width_includes_header() {
        let s = schema();
        assert_eq!(s.avg_row_width(), 16 + 8 + 24 + 8);
    }
}
