//! Table and column statistics.
//!
//! Statistics power two things:
//!
//! 1. the cost model's selectivity estimates (equality via NDV + histogram,
//!    ranges via equi-depth histogram interpolation), and
//! 2. *dataless indexes* (§III-A4): a hypothetical index carries statistics
//!    computed from the base table without materializing entries, exactly
//!    the role HypoPG / "what-if" indexes play for the paper.

use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Number of equi-depth histogram buckets built per column.
pub const DEFAULT_BUCKETS: usize = 32;

/// One equi-depth histogram bucket: values in `(previous upper, upper]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub upper: Value,
    /// Number of values in the bucket.
    pub count: u64,
    /// Number of distinct values in the bucket.
    pub distinct: u64,
}

/// Equi-depth histogram over the non-null values of one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    pub buckets: Vec<Bucket>,
    /// Inclusive lower bound of the first bucket.
    pub lower: Option<Value>,
}

impl Histogram {
    /// Builds an equi-depth histogram from a *sorted* slice of non-null
    /// values.
    pub fn build(sorted: &[Value], bucket_count: usize) -> Self {
        if sorted.is_empty() {
            return Self::default();
        }
        let bucket_count = bucket_count.max(1).min(sorted.len());
        let per_bucket = sorted.len().div_ceil(bucket_count);
        let mut buckets = Vec::with_capacity(bucket_count);
        let mut start = 0;
        while start < sorted.len() {
            let mut end = (start + per_bucket).min(sorted.len());
            // Extend the bucket so equal values never straddle a boundary;
            // otherwise equality estimates would split a heavy value.
            while end < sorted.len() && sorted[end] == sorted[end - 1] {
                end += 1;
            }
            let slice = &sorted[start..end];
            let mut distinct = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            buckets.push(Bucket {
                upper: slice[slice.len() - 1].clone(),
                count: slice.len() as u64,
                distinct,
            });
            start = end;
        }
        Self {
            buckets,
            lower: Some(sorted[0].clone()),
        }
    }

    /// Total number of values covered by the histogram.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Estimated number of values equal to `v`.
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        let Some(lower) = &self.lower else { return 0.0 };
        if v < lower {
            return 0.0;
        }
        let mut prev_upper = lower.clone();
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = if i == 0 {
                *v >= prev_upper && *v <= b.upper
            } else {
                *v > prev_upper && *v <= b.upper
            };
            if in_bucket {
                return b.count as f64 / b.distinct.max(1) as f64;
            }
            prev_upper = b.upper.clone();
        }
        0.0
    }

    /// Estimated number of values in the given range.
    pub fn estimate_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        let Some(lower) = &self.lower else { return 0.0 };
        let mut est = 0.0;
        let mut prev_upper: Value = lower.clone();
        for (i, b) in self.buckets.iter().enumerate() {
            let b_lo = if i == 0 { lower } else { &prev_upper };
            // Fraction of this bucket below the range's lower bound.
            let cut_low = match lo {
                Bound::Unbounded => 0.0,
                Bound::Included(v) | Bound::Excluded(v) => fraction_below(b_lo, &b.upper, v),
            };
            let cut_high = match hi {
                Bound::Unbounded => 0.0,
                Bound::Included(v) | Bound::Excluded(v) => {
                    1.0 - fraction_below(b_lo, &b.upper, v)
                }
            };
            let keep = (1.0 - cut_low - cut_high).max(0.0);
            est += keep * b.count as f64;
            prev_upper = b.upper.clone();
        }
        est
    }
}

/// Fraction of the interval `[lo, hi]` that lies strictly below `v`,
/// interpolating linearly for numerics and falling back to 0 / 0.5 / 1 for
/// non-numeric types.
fn fraction_below(lo: &Value, hi: &Value, v: &Value) -> f64 {
    if v <= lo {
        return 0.0;
    }
    if v > hi {
        return 1.0;
    }
    match (lo.as_f64(), hi.as_f64(), v.as_f64()) {
        (Some(l), Some(h), Some(x)) if h > l => ((x - l) / (h - l)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub row_count: u64,
    pub null_count: u64,
    /// Number of distinct non-null values.
    pub ndv: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub histogram: Histogram,
    /// Average storage width of values in this column, in bytes.
    pub avg_width: f64,
}

impl ColumnStats {
    /// Selectivity of `column = v` (fraction of table rows).
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        if v.is_null() {
            return self.null_count as f64 / self.row_count as f64;
        }
        let est = self.histogram.estimate_eq(v);
        if est > 0.0 {
            (est / self.row_count as f64).clamp(0.0, 1.0)
        } else if self.ndv > 0 {
            // Value outside histogram (stale stats or parameter marker):
            // fall back to the uniform 1/NDV estimate.
            (1.0 / self.ndv as f64).min(1.0)
        } else {
            0.0
        }
    }

    /// Selectivity of an equality with an *unknown* parameter (`col = ?`):
    /// the classic 1/NDV estimate.
    pub fn eq_selectivity_unknown(&self) -> f64 {
        if self.ndv == 0 {
            0.0
        } else {
            (1.0 / self.ndv as f64).min(1.0)
        }
    }

    /// Selectivity of a range predicate on this column.
    pub fn range_selectivity(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        let est = self.histogram.estimate_range(lo, hi);
        (est / self.row_count as f64).clamp(0.0, 1.0)
    }

    /// Selectivity of a range with unknown bounds (`col > ?`): the
    /// traditional fixed guess.
    pub fn range_selectivity_unknown(&self) -> f64 {
        1.0 / 3.0
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Column stats lookup.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

/// Computes fresh statistics for every column of `table` (ANALYZE).
pub fn analyze(table: &Table, bucket_count: usize) -> TableStats {
    let schema = table.schema();
    let row_count = table.row_count() as u64;
    let mut columns = BTreeMap::new();

    for (pos, col) in schema.columns.iter().enumerate() {
        let mut values: Vec<Value> = Vec::with_capacity(table.row_count());
        let mut null_count = 0u64;
        let mut width_sum = 0u64;
        let mut io = crate::io::IoStats::new();
        for row in table.scan_all(&mut io) {
            let v = &row[pos];
            width_sum += v.storage_size();
            if v.is_null() {
                null_count += 1;
            } else {
                values.push(v.clone());
            }
        }
        values.sort();
        let mut ndv = 0u64;
        if !values.is_empty() {
            ndv = 1;
            for w in values.windows(2) {
                if w[0] != w[1] {
                    ndv += 1;
                }
            }
        }
        let stats = ColumnStats {
            row_count,
            null_count,
            ndv,
            min: values.first().cloned(),
            max: values.last().cloned(),
            histogram: Histogram::build(&values, bucket_count),
            avg_width: if row_count > 0 {
                width_sum as f64 / row_count as f64
            } else {
                col.avg_width as f64
            },
        };
        columns.insert(col.name.clone(), stats);
    }

    TableStats { row_count, columns }
}

/// Stable hash of a value for deterministic sampling (independent of the
/// process-seeded `DefaultHasher`).
pub fn value_sample_hash(v: &Value) -> u64 {
    use crate::value::Value as V;
    match v {
        V::Null => 0,
        V::Bool(b) => 1 + u64::from(*b),
        V::Int(i) => (*i as f64).to_bits() ^ 0x5bd1_e995,
        V::Float(f) => f.to_bits() ^ 0x5bd1_e995,
        V::Str(s) => crate::stats::fnv_str(s),
        V::MaxKey => u64::MAX,
    }
}

fn fnv_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Exact number of distinct tuples of `columns` in `table` — the composite
/// NDV a dataless index needs for estimating prefix selectivity.
pub fn distinct_prefix_count(table: &Table, columns: &[String]) -> u64 {
    let schema = table.schema();
    let positions: Vec<usize> = columns
        .iter()
        .filter_map(|c| schema.column_index(c))
        .collect();
    if positions.len() != columns.len() {
        return 0;
    }
    let mut seen: std::collections::BTreeSet<Vec<Value>> = std::collections::BTreeSet::new();
    let mut io = crate::io::IoStats::new();
    for row in table.scan_all(&mut io) {
        seen.insert(positions.iter().map(|&p| row[p].clone()).collect());
    }
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoStats;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn table_with(values: &[i64]) -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let mut io = IoStats::new();
        for (i, v) in values.iter().enumerate() {
            t.insert(vec![Value::Int(i as i64), Value::Int(*v)], &mut io)
                .unwrap();
        }
        t
    }

    #[test]
    fn analyze_computes_ndv_min_max() {
        let t = table_with(&[5, 3, 3, 7, 5]);
        let stats = analyze(&t, 4);
        let c = stats.column("v").unwrap();
        assert_eq!(c.ndv, 3);
        assert_eq!(c.min, Some(Value::Int(3)));
        assert_eq!(c.max, Some(Value::Int(7)));
        assert_eq!(c.row_count, 5);
        assert_eq!(c.null_count, 0);
    }

    #[test]
    fn histogram_total_matches_row_count() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 97).collect();
        let t = table_with(&vals);
        let stats = analyze(&t, DEFAULT_BUCKETS);
        assert_eq!(stats.column("v").unwrap().histogram.total(), 1000);
    }

    #[test]
    fn eq_selectivity_uniform_data() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let t = table_with(&vals);
        let stats = analyze(&t, DEFAULT_BUCKETS);
        let sel = stats.column("v").unwrap().eq_selectivity(&Value::Int(42));
        // Each value appears 10 times in 1000 rows: true selectivity 0.01.
        assert!((sel - 0.01).abs() < 0.005, "sel = {sel}");
    }

    #[test]
    fn eq_selectivity_skewed_data() {
        // Value 0 appears 901 times, values 1..=99 once each.
        let mut vals = vec![0i64; 901];
        vals.extend(1..=99);
        let t = table_with(&vals);
        let stats = analyze(&t, DEFAULT_BUCKETS);
        let c = stats.column("v").unwrap();
        let hot = c.eq_selectivity(&Value::Int(0));
        let cold = c.eq_selectivity(&Value::Int(50));
        assert!(hot > 0.5, "hot = {hot}");
        assert!(cold < 0.05, "cold = {cold}");
    }

    #[test]
    fn range_selectivity_uniform() {
        let vals: Vec<i64> = (0..1000).collect();
        let t = table_with(&vals);
        let stats = analyze(&t, DEFAULT_BUCKETS);
        let c = stats.column("v").unwrap();
        let lo = Value::Int(250);
        let hi = Value::Int(750);
        let sel = c.range_selectivity(Bound::Included(&lo), Bound::Excluded(&hi));
        assert!((sel - 0.5).abs() < 0.1, "sel = {sel}");
    }

    #[test]
    fn range_selectivity_open_ended() {
        let vals: Vec<i64> = (0..1000).collect();
        let t = table_with(&vals);
        let stats = analyze(&t, DEFAULT_BUCKETS);
        let c = stats.column("v").unwrap();
        let lo = Value::Int(900);
        let sel = c.range_selectivity(Bound::Included(&lo), Bound::Unbounded);
        assert!((sel - 0.1).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn null_counting() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("v", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let mut io = IoStats::new();
        t.insert(vec![Value::Int(1), Value::Null], &mut io).unwrap();
        t.insert(vec![Value::Int(2), Value::Int(5)], &mut io)
            .unwrap();
        let stats = analyze(&t, 4);
        let c = stats.column("v").unwrap();
        assert_eq!(c.null_count, 1);
        assert_eq!(c.ndv, 1);
        assert!((c.eq_selectivity(&Value::Null) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_prefix_count_composite() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("b", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap();
        let mut t = Table::new(schema);
        let mut io = IoStats::new();
        for (i, (a, b)) in [(1, 1), (1, 2), (1, 1), (2, 1)].iter().enumerate() {
            t.insert(
                vec![Value::Int(i as i64), Value::Int(*a), Value::Int(*b)],
                &mut io,
            )
            .unwrap();
        }
        assert_eq!(distinct_prefix_count(&t, &["a".into()]), 2);
        assert_eq!(distinct_prefix_count(&t, &["a".into(), "b".into()]), 3);
        assert_eq!(distinct_prefix_count(&t, &["missing".into()]), 0);
    }

    #[test]
    fn empty_table_stats() {
        let t = table_with(&[]);
        let stats = analyze(&t, 4);
        let c = stats.column("v").unwrap();
        assert_eq!(c.ndv, 0);
        assert_eq!(c.eq_selectivity(&Value::Int(1)), 0.0);
        assert_eq!(c.range_selectivity(Bound::Unbounded, Bound::Unbounded), 0.0);
    }

    #[test]
    fn heavy_value_does_not_straddle_buckets() {
        // 500 copies of 10 among other values; equality estimate for 10
        // should be near 500 even with few buckets.
        let mut vals: Vec<i64> = (0..250).collect();
        vals.extend(std::iter::repeat_n(10, 500));
        vals.extend(300..550);
        let t = table_with(&vals);
        let stats = analyze(&t, 8);
        let c = stats.column("v").unwrap();
        let est_hot = c.eq_selectivity(&Value::Int(10)) * c.row_count as f64;
        let est_cold = c.eq_selectivity(&Value::Int(400)) * c.row_count as f64;
        // The bucket-boundary extension keeps all copies of the heavy value
        // in one bucket, so its estimate must dominate a cold value's.
        assert!(est_hot > 10.0 * est_cold, "hot = {est_hot}, cold = {est_cold}");
        assert!(est_hot > 20.0, "hot = {est_hot}");
    }
}
