//! Clustered tables.
//!
//! A [`Table`] stores rows clustered by primary key (as InnoDB does: the
//! base table *is* the PK B+-tree) and maintains any number of secondary
//! indexes. All mutation paths keep the secondary indexes consistent and
//! charge write I/O, which is what the paper's index-maintenance overhead
//! term `cost_u(q, i)` (Eq. 8) is computed from.

use crate::backend::{memory_backend, StorageBackend, TaggedEntry};
use crate::error::StorageError;
use crate::index::SecondaryIndex;
use crate::io::IoStats;
use crate::schema::{IndexDef, TableSchema};
use crate::value::{Key, Row, Value};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// A table: clustered rows plus secondary indexes.
///
/// Rows always live in the in-memory `BTreeMap` — that is what queries
/// read. The attached [`StorageBackend`] decides whether mutations also
/// write through to paged durable storage (disk backend) and whether scan
/// costs are measured from real page walks or charged from the simulated
/// model (memory backend).
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: BTreeMap<Key, Row>,
    indexes: BTreeMap<String, SecondaryIndex>,
    /// Running total of row bytes, for page-count estimation.
    total_row_bytes: u64,
    backend: Arc<dyn StorageBackend>,
}

impl Table {
    /// Creates an empty table with the given schema on the in-memory
    /// backend.
    pub fn new(schema: TableSchema) -> Self {
        Self {
            schema,
            rows: BTreeMap::new(),
            indexes: BTreeMap::new(),
            total_row_bytes: 0,
            backend: memory_backend(),
        }
    }

    /// Attaches a backend (builder style; used at table creation, before
    /// any rows exist).
    pub(crate) fn with_backend(mut self, backend: Arc<dyn StorageBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Re-points this table (and its indexes) at the in-memory backend.
    /// Used when cloning a database: clones are volatile test substrates
    /// and must not write through to the source's disk files.
    pub(crate) fn detach_to_memory(&mut self) {
        self.backend = memory_backend();
        for ix in self.indexes.values_mut() {
            ix.set_backend(memory_backend());
        }
    }

    /// Rebuilds a table from backend-recovered state. Rows come from the
    /// heap; index entries come from the index trees verbatim (they are
    /// *not* re-derived, so divergence between tree and heap surfaces as
    /// a consistency failure, not a silent self-heal).
    pub(crate) fn load(
        schema: TableSchema,
        rows: Vec<Row>,
        indexes: Vec<(IndexDef, Vec<Key>)>,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, StorageError> {
        let mut t = Table::new(schema).with_backend(backend.clone());
        for row in rows {
            if row.len() != t.schema.columns.len() {
                return Err(StorageError::Corrupt {
                    detail: format!(
                        "table {}: recovered row arity {} != schema arity {}",
                        t.schema.name,
                        row.len(),
                        t.schema.columns.len()
                    ),
                });
            }
            let pk = t.pk_of(&row);
            let bytes: u64 = row.iter().map(Value::storage_size).sum();
            if t.rows.insert(pk, row).is_some() {
                return Err(StorageError::Corrupt {
                    detail: format!("table {}: duplicate recovered PK", t.schema.name),
                });
            }
            t.total_row_bytes += bytes;
        }
        for (def, entries) in indexes {
            let key_positions = t.resolve_key_positions(&def)?;
            let mut ix =
                SecondaryIndex::new(def, key_positions, t.schema.primary_key.clone());
            ix.set_backend(backend.clone());
            for entry in entries {
                ix.insert_entry(entry);
            }
            t.indexes.insert(ix.def().name.clone(), ix);
        }
        Ok(t)
    }

    /// Index entry per secondary index for `row`, tagged by index name —
    /// what the backend persists into its index trees.
    fn tagged_entries(&self, row: &Row) -> Vec<TaggedEntry> {
        self.indexes
            .values()
            .map(|ix| (ix.def().name.clone(), ix.entry_for_row(row)))
            .collect()
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Total data bytes of the clustered rows (excluding secondary indexes).
    pub fn data_bytes(&self) -> u64 {
        self.total_row_bytes
    }

    /// The primary key tuple of `row`.
    pub fn pk_of(&self, row: &Row) -> Key {
        self.schema
            .primary_key
            .iter()
            .map(|&i| row[i].clone())
            .collect()
    }

    // ------------------------------------------------------------- mutation

    /// Inserts a row, maintaining all secondary indexes.
    pub fn insert(&mut self, row: Row, io: &mut IoStats) -> Result<(), StorageError> {
        if row.len() != self.schema.columns.len() {
            return Err(StorageError::RowMismatch(format!(
                "table {}: expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        let pk = self.pk_of(&row);
        if self.rows.contains_key(&pk) {
            return Err(StorageError::DuplicateKey {
                table: self.schema.name.clone(),
                key: format!("{pk:?}"),
            });
        }
        self.backend
            .persist_insert(&self.schema.name, &pk, &row, &self.tagged_entries(&row))?;
        let bytes: u64 = row.iter().map(Value::storage_size).sum();
        io.charge_writes(1, bytes);
        for ix in self.indexes.values_mut() {
            ix.insert_row(&row);
            io.charge_writes(1, 64);
        }
        self.total_row_bytes += bytes;
        self.rows.insert(pk, row);
        Ok(())
    }

    /// Deletes the row with primary key `pk`; returns it if present.
    /// Fails (leaving the row in place, memory and disk agreeing) when the
    /// backend cannot persist the delete.
    pub fn delete(
        &mut self,
        pk: &Key,
        io: &mut IoStats,
    ) -> Result<Option<Row>, StorageError> {
        let Some(row) = self.rows.get(pk).cloned() else {
            return Ok(None);
        };
        self.backend
            .persist_delete(&self.schema.name, pk, &self.tagged_entries(&row))?;
        self.rows.remove(pk);
        let bytes: u64 = row.iter().map(Value::storage_size).sum();
        self.total_row_bytes -= bytes;
        io.charge_writes(1, bytes);
        for ix in self.indexes.values_mut() {
            ix.remove_row(&row);
            io.charge_writes(1, 64);
        }
        Ok(Some(row))
    }

    /// Replaces the row with primary key `pk` by `new_row` (same PK).
    /// Secondary index entries are only rewritten when their key changed.
    pub fn update(&mut self, pk: &Key, new_row: Row, io: &mut IoStats) -> Result<(), StorageError> {
        let old = self
            .rows
            .get(pk)
            .cloned()
            .ok_or_else(|| StorageError::RowMismatch("update of missing row".into()))?;
        if self.pk_of(&new_row) != *pk {
            return Err(StorageError::RowMismatch(
                "update must not change the primary key".into(),
            ));
        }
        let mut removed = Vec::new();
        let mut added = Vec::new();
        for ix in self.indexes.values() {
            let before = ix.entry_for_row(&old);
            let after = ix.entry_for_row(&new_row);
            if before != after {
                removed.push((ix.def().name.clone(), before));
                added.push((ix.def().name.clone(), after));
            }
        }
        self.backend
            .persist_update(&self.schema.name, pk, &new_row, &removed, &added)?;
        let old_bytes: u64 = old.iter().map(Value::storage_size).sum();
        let new_bytes: u64 = new_row.iter().map(Value::storage_size).sum();
        io.charge_writes(1, new_bytes);
        for ix in self.indexes.values_mut() {
            let before = ix.entry_for_row(&old);
            let after = ix.entry_for_row(&new_row);
            if before != after {
                ix.remove_row(&old);
                ix.insert_row(&new_row);
                io.charge_writes(2, 128);
            }
        }
        self.total_row_bytes = self.total_row_bytes - old_bytes + new_bytes;
        self.rows.insert(pk.clone(), new_row);
        Ok(())
    }

    // -------------------------------------------------------------- indexes

    /// Resolves an index definition's column names to row positions.
    fn resolve_key_positions(&self, def: &IndexDef) -> Result<Vec<usize>, StorageError> {
        let mut key_positions = Vec::with_capacity(def.columns.len());
        for col in &def.columns {
            let pos = self.schema.column_index(col).ok_or_else(|| {
                StorageError::UnknownColumn {
                    table: self.schema.name.clone(),
                    column: col.clone(),
                }
            })?;
            if key_positions.contains(&pos) {
                return Err(StorageError::InvalidSchema(format!(
                    "index {}: duplicate key column {col}",
                    def.name
                )));
            }
            key_positions.push(pos);
        }
        Ok(key_positions)
    }

    /// Creates and populates a secondary index. The build is staged in
    /// memory, persisted as one backend transaction, and only then
    /// installed — a persist failure leaves no trace of the index.
    pub fn create_index(&mut self, def: IndexDef, io: &mut IoStats) -> Result<(), StorageError> {
        if self.indexes.contains_key(&def.name) {
            return Err(StorageError::DuplicateIndex {
                table: self.schema.name.clone(),
                index: def.name,
            });
        }
        let key_positions = self.resolve_key_positions(&def)?;
        let mut ix = SecondaryIndex::new(def, key_positions, self.schema.primary_key.clone());
        ix.set_backend(self.backend.clone());
        for row in self.rows.values() {
            ix.insert_row(row);
        }
        let entries: Vec<Key> = ix.entries().cloned().collect();
        self.backend.persist_create_index(ix.def(), &entries)?;
        // Building an index reads the whole table and writes the new tree.
        io.charge_sequential(self.total_row_bytes);
        io.charge_writes(self.rows.len() as u64, ix.size_bytes());
        self.indexes.insert(ix.def().name.clone(), ix);
        Ok(())
    }

    /// Drops a secondary index.
    pub fn drop_index(&mut self, name: &str) -> Result<IndexDef, StorageError> {
        if !self.indexes.contains_key(name) {
            return Err(StorageError::UnknownIndex {
                table: self.schema.name.clone(),
                index: name.to_string(),
            });
        }
        self.backend.persist_drop_index(&self.schema.name, name)?;
        Ok(self
            .indexes
            .remove(name)
            .expect("checked above")
            .def()
            .clone())
    }

    /// Looks up an index by name.
    pub fn index(&self, name: &str) -> Option<&SecondaryIndex> {
        self.indexes.get(name)
    }

    /// All secondary indexes on this table.
    pub fn indexes(&self) -> impl Iterator<Item = &SecondaryIndex> {
        self.indexes.values()
    }

    /// True if an index with exactly these key columns already exists.
    pub fn has_index_on(&self, columns: &[String]) -> bool {
        self.indexes
            .values()
            .any(|ix| ix.def().columns == columns)
    }

    // ---------------------------------------------------------------- scans

    /// Full clustered scan in PK order. On a disk backend the cost is
    /// measured from the real heap-chain walk; otherwise the simulated
    /// model is charged.
    pub fn scan_all(&self, io: &mut IoStats) -> impl Iterator<Item = &Row> {
        if !self.backend.account_full_scan(&self.schema.name, io) {
            io.charge_seek();
            io.charge_sequential(self.total_row_bytes);
            io.charge_rows(self.rows.len() as u64);
        }
        self.rows.values()
    }

    /// Point lookup by full primary key. Charges one seek (simulated) or
    /// the measured PK-tree descent plus heap fetch (disk backend).
    pub fn pk_lookup(&self, pk: &Key, io: &mut IoStats) -> Option<&Row> {
        if !self.backend.account_pk_lookup(&self.schema.name, pk, io) {
            io.charge_seek();
            let row = self.rows.get(pk);
            if row.is_some() {
                io.charge_rows(1);
            }
            return row;
        }
        self.rows.get(pk)
    }

    /// Range scan on a PK *prefix*: all rows whose leading PK columns equal
    /// `prefix`, refined by an optional range on the next PK column.
    pub fn pk_range(
        &self,
        prefix: &[Value],
        next_col_range: (Bound<&Value>, Bound<&Value>),
        io: &mut IoStats,
    ) -> Vec<&Row> {
        let (lower, upper) = crate::value::prefix_range_bounds(prefix, next_col_range);
        let measured = self.backend.account_pk_range(
            &self.schema.name,
            lower.as_ref(),
            upper.as_ref(),
            io,
        );
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for row in self.rows.range((lower, upper)).map(|(_, r)| r) {
            bytes += row.iter().map(Value::storage_size).sum::<u64>();
            out.push(row);
        }
        if !measured {
            io.charge_seek();
            io.charge_rows(out.len() as u64);
            if bytes > 0 {
                io.charge_sequential(bytes);
            }
        }
        out
    }

    /// Lazy variant of [`Table::pk_range`]: iterates matching rows in PK
    /// order without charging I/O. Early-terminating callers must charge
    /// per row consumed.
    pub fn iter_pk_range(
        &self,
        prefix: &[Value],
        next_col_range: (Bound<&Value>, Bound<&Value>),
    ) -> impl Iterator<Item = &Row> {
        let (lower, upper) = crate::value::prefix_range_bounds(prefix, next_col_range);
        self.rows.range((lower, upper)).map(|(_, r)| r)
    }

    /// Total bytes of all secondary indexes on this table.
    pub fn secondary_index_bytes(&self) -> u64 {
        self.indexes.values().map(SecondaryIndex::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("b", ColumnType::Str),
            ],
            &["id"],
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: i64, a: i64, b: &str) -> Row {
        vec![Value::Int(id), Value::Int(a), Value::Str(b.into())]
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let mut t = table();
        let mut io = IoStats::new();
        t.insert(row(1, 10, "x"), &mut io).unwrap();
        t.insert(row(2, 20, "y"), &mut io).unwrap();
        assert_eq!(t.row_count(), 2);
        assert!(t.pk_lookup(&vec![Value::Int(1)], &mut io).is_some());
        assert!(t.delete(&vec![Value::Int(1)], &mut io).unwrap().is_some());
        assert_eq!(t.row_count(), 1);
        assert!(t.pk_lookup(&vec![Value::Int(1)], &mut io).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        let mut io = IoStats::new();
        t.insert(row(1, 10, "x"), &mut io).unwrap();
        assert!(matches!(
            t.insert(row(1, 99, "z"), &mut io),
            Err(StorageError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = table();
        let mut io = IoStats::new();
        assert!(matches!(
            t.insert(vec![Value::Int(1)], &mut io),
            Err(StorageError::RowMismatch(_))
        ));
    }

    #[test]
    fn index_is_maintained_on_insert_and_delete() {
        let mut t = table();
        let mut io = IoStats::new();
        t.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        t.insert(row(1, 10, "x"), &mut io).unwrap();
        t.insert(row(2, 20, "y"), &mut io).unwrap();
        assert_eq!(t.index("ix_a").unwrap().len(), 2);
        t.delete(&vec![Value::Int(1)], &mut io).unwrap();
        assert_eq!(t.index("ix_a").unwrap().len(), 1);
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let mut t = table();
        let mut io = IoStats::new();
        t.insert(row(1, 10, "x"), &mut io).unwrap();
        t.insert(row(2, 20, "y"), &mut io).unwrap();
        t.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        assert_eq!(t.index("ix_a").unwrap().len(), 2);
    }

    #[test]
    fn update_rewrites_only_affected_indexes() {
        let mut t = table();
        let mut io = IoStats::new();
        t.create_index(IndexDef::new("ix_a", "t", vec!["a".into()]), &mut io)
            .unwrap();
        t.create_index(IndexDef::new("ix_b", "t", vec!["b".into()]), &mut io)
            .unwrap();
        t.insert(row(1, 10, "x"), &mut io).unwrap();

        let mut io2 = IoStats::new();
        // Change only `a`; ix_b's entry must be untouched.
        t.update(&vec![Value::Int(1)], row(1, 99, "x"), &mut io2)
            .unwrap();
        // 1 row write + 2 entry writes for ix_a only.
        assert_eq!(io2.rows_written, 3);
        let mut io3 = IoStats::new();
        let hits = t.index("ix_a").unwrap().scan_prefix_range(
            &[Value::Int(99)],
            (Bound::Unbounded, Bound::Unbounded),
            &mut io3,
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn update_cannot_change_pk() {
        let mut t = table();
        let mut io = IoStats::new();
        t.insert(row(1, 10, "x"), &mut io).unwrap();
        assert!(t
            .update(&vec![Value::Int(1)], row(2, 10, "x"), &mut io)
            .is_err());
    }

    #[test]
    fn pk_range_scan() {
        let mut t = table();
        let mut io = IoStats::new();
        for i in 1..=10 {
            t.insert(row(i, i * 10, "r"), &mut io).unwrap();
        }
        let lo = Value::Int(3);
        let hi = Value::Int(6);
        let rows = t.pk_range(
            &[],
            (Bound::Included(&lo), Bound::Excluded(&hi)),
            &mut IoStats::new(),
        );
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        let mut io = IoStats::new();
        t.create_index(IndexDef::new("ix", "t", vec!["a".into()]), &mut io)
            .unwrap();
        assert!(matches!(
            t.create_index(IndexDef::new("ix", "t", vec!["b".into()]), &mut io),
            Err(StorageError::DuplicateIndex { .. })
        ));
    }

    #[test]
    fn has_index_on_matches_exact_column_list() {
        let mut t = table();
        let mut io = IoStats::new();
        t.create_index(
            IndexDef::new("ix", "t", vec!["a".into(), "b".into()]),
            &mut io,
        )
        .unwrap();
        assert!(t.has_index_on(&["a".into(), "b".into()]));
        assert!(!t.has_index_on(&["b".into(), "a".into()]));
        assert!(!t.has_index_on(&["a".into()]));
    }

    #[test]
    fn drop_index_removes_it() {
        let mut t = table();
        let mut io = IoStats::new();
        t.create_index(IndexDef::new("ix", "t", vec!["a".into()]), &mut io)
            .unwrap();
        t.drop_index("ix").unwrap();
        assert!(t.index("ix").is_none());
        assert!(t.drop_index("ix").is_err());
    }

    #[test]
    fn data_bytes_track_inserts_and_deletes() {
        let mut t = table();
        let mut io = IoStats::new();
        assert_eq!(t.data_bytes(), 0);
        t.insert(row(1, 10, "hello"), &mut io).unwrap();
        let b = t.data_bytes();
        assert!(b > 0);
        t.delete(&vec![Value::Int(1)], &mut io).unwrap();
        assert_eq!(t.data_bytes(), 0);
    }
}
