//! Typed values and their total order.
//!
//! Values are the cell type of every row, clustered-key and secondary-index
//! entry in the engine. A *total* order across all variants is required so
//! heterogeneous key tuples can live in ordered maps: `Null` sorts lowest
//! (matching MySQL's index ordering of NULLs), numbers compare numerically
//! across `Int`/`Float`, and the internal `MaxKey` sentinel sorts above
//! everything so half-open prefix ranges can be expressed as map bounds.

use std::cmp::Ordering;
use std::fmt;

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Internal sentinel that compares greater than every other value.
    /// Used only to build exclusive upper bounds for index prefix scans;
    /// never stored in a table.
    MaxKey,
}

impl Value {
    /// Estimated on-disk footprint in bytes, used for index/table size
    /// accounting (Table II reports index sizes).
    pub fn storage_size(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len() as u64,
            Value::MaxKey => 0,
        }
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used for arithmetic and cross-type comparison.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, truncating floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Rank used to order values of different variants.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            // Int and Float share a rank: they compare numerically.
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::MaxKey => u8::MAX,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (MaxKey, MaxKey) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::MaxKey => u8::MAX.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::MaxKey => write!(f, "<max>"),
        }
    }
}

/// A key tuple: the ordered sequence of values forming a clustered or
/// secondary index key. Ordering is lexicographic over the constituent
/// values, which is exactly B+-tree composite key order.
pub type Key = Vec<Value>;

/// A full table row, ordered per the table schema.
pub type Row = Vec<Value>;

/// Returns the exclusive upper bound for scanning all keys that start with
/// `prefix`: the prefix with the `MaxKey` sentinel appended.
pub fn prefix_upper_bound(prefix: &[Value]) -> Key {
    let mut k = prefix.to_vec();
    k.push(Value::MaxKey);
    k
}

/// Builds B+-tree key-range bounds for "all keys starting with `prefix`,
/// with the column right after the prefix constrained to `next_col_range`".
///
/// The `MaxKey` sentinel encodes exclusive/inclusive bounds over composite
/// keys whose stored entries are longer than the constrained prefix.
pub fn prefix_range_bounds(
    prefix: &[Value],
    next_col_range: (std::ops::Bound<&Value>, std::ops::Bound<&Value>),
) -> (std::ops::Bound<Key>, std::ops::Bound<Key>) {
    use std::ops::Bound;
    let lower: Bound<Key> = match next_col_range.0 {
        Bound::Included(v) => {
            let mut k = prefix.to_vec();
            k.push(v.clone());
            Bound::Included(k)
        }
        Bound::Excluded(v) => {
            let mut k = prefix.to_vec();
            k.push(v.clone());
            k.push(Value::MaxKey);
            Bound::Excluded(k)
        }
        Bound::Unbounded => {
            if prefix.is_empty() {
                Bound::Unbounded
            } else {
                Bound::Included(prefix.to_vec())
            }
        }
    };
    let upper: Bound<Key> = match next_col_range.1 {
        Bound::Included(v) => {
            let mut k = prefix.to_vec();
            k.push(v.clone());
            k.push(Value::MaxKey);
            Bound::Excluded(k)
        }
        Bound::Excluded(v) => {
            let mut k = prefix.to_vec();
            k.push(v.clone());
            Bound::Excluded(k)
        }
        Bound::Unbounded => {
            if prefix.is_empty() {
                Bound::Unbounded
            } else {
                Bound::Excluded(prefix_upper_bound(prefix))
            }
        }
    };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn max_key_sorts_last() {
        assert!(Value::MaxKey > Value::Str("zzzz".into()));
        assert!(Value::MaxKey > Value::Int(i64::MAX));
        assert!(Value::MaxKey > Value::Null);
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn equal_int_float_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn key_tuples_order_lexicographically() {
        let a = vec![Value::Int(1), Value::Str("b".into())];
        let b = vec![Value::Int(1), Value::Str("c".into())];
        let c = vec![Value::Int(2), Value::Str("a".into())];
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn prefix_upper_bound_covers_all_extensions() {
        let prefix = vec![Value::Int(5)];
        let hi = prefix_upper_bound(&prefix);
        let within = vec![Value::Int(5), Value::Str("anything".into())];
        let beyond = vec![Value::Int(6)];
        assert!(within < hi);
        assert!(hi < beyond);
    }

    #[test]
    fn storage_sizes() {
        assert_eq!(Value::Int(0).storage_size(), 8);
        assert_eq!(Value::Str("abc".into()).storage_size(), 5);
        assert_eq!(Value::Null.storage_size(), 1);
    }

    #[test]
    fn nan_is_ordered_totally() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above all finite floats.
        assert!(nan > Value::Float(f64::MAX));
        assert_eq!(nan.cmp(&Value::Float(f64::NAN)), Ordering::Equal);
    }
}
