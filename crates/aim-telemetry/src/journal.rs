//! The event journal: a bounded ring buffer of structured advisor events.
//!
//! Events capture the *decisions* of the pipeline — which plan was chosen,
//! which candidates merged, which indexes were accepted, rejected, reverted
//! or garbage-collected, and what the clone-validation verdict was — so a
//! mis-tune can be reconstructed after the fact. The journal keeps the most
//! recent [`capacity`](set_capacity) events; every event is also fanned out
//! to the registered [`crate::sink::EventSink`]s as it happens.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of decision an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The planner settled on an access path / join order for a query.
    PlanChosen,
    /// Partial orders were merged into wider composite candidates.
    CandidateMerged,
    /// An index passed validation and was materialized on production.
    IndexAccepted,
    /// A candidate was rejected (validation or materialization failure).
    IndexRejected,
    /// The continuous detector flagged a per-query regression.
    RegressionDetected,
    /// A recently-created automation index was dropped after a regression.
    IndexReverted,
    /// An automation index was garbage-collected as unused.
    IndexDropped,
    /// Clone validation finished a round or delivered its final verdict.
    ValidationVerdict,
    /// A tuning pass completed (summary).
    TuningPass,
    /// A phase was retried after a transient failure.
    PhaseRetried,
    /// A pass fell back to a degraded mode (sequential path, shrunken
    /// validation sample) after repeated transient failures.
    PassDegraded,
    /// A pass was aborted (deadline, cancellation, retries exhausted) and
    /// its partially materialized indexes were rolled back.
    PassAborted,
    /// The latency sentinel flagged a windowed latency regression after a
    /// materialization and rolled the suspect indexes back.
    RegressionRollback,
    /// An SLO rule's multi-window burn rate crossed its threshold (the
    /// target names the rule, the detail names the tenant and burns).
    SloAlert,
}

impl EventKind {
    /// Stable snake_case name used in JSON artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::PlanChosen => "plan_chosen",
            EventKind::CandidateMerged => "candidate_merged",
            EventKind::IndexAccepted => "index_accepted",
            EventKind::IndexRejected => "index_rejected",
            EventKind::RegressionDetected => "regression_detected",
            EventKind::IndexReverted => "index_reverted",
            EventKind::IndexDropped => "index_dropped",
            EventKind::ValidationVerdict => "validation_verdict",
            EventKind::TuningPass => "tuning_pass",
            EventKind::PhaseRetried => "phase_retried",
            EventKind::PassDegraded => "pass_degraded",
            EventKind::PassAborted => "pass_aborted",
            EventKind::RegressionRollback => "regression_rollback",
            EventKind::SloAlert => "slo_alert",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-wide monotonic sequence number.
    pub seq: u64,
    pub kind: EventKind,
    /// What the event is about (index name, table, query fingerprint...).
    pub target: String,
    /// Human-readable specifics.
    pub detail: String,
}

const DEFAULT_CAPACITY: usize = 4096;

struct Journal {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self {
            ring: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        }
    }
}

static JOURNAL: Mutex<Option<Journal>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn with_journal<R>(f: impl FnOnce(&mut Journal) -> R) -> R {
    let mut guard = JOURNAL.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Journal::default))
}

/// Records an event (no-op while telemetry is disabled). The event enters
/// the ring buffer — evicting the oldest entry when full — and is pushed
/// to every registered sink.
pub fn event(kind: EventKind, target: impl Into<String>, detail: impl Into<String>) {
    if !crate::is_enabled() {
        return;
    }
    let e = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind,
        target: target.into(),
        detail: detail.into(),
    };
    let evicted = with_journal(|j| {
        let mut evicted = 0u64;
        while j.ring.len() >= j.capacity {
            j.ring.pop_front();
            j.dropped += 1;
            evicted += 1;
        }
        j.ring.push_back(e.clone());
        evicted
    });
    if evicted > 0 {
        crate::metrics::JOURNAL_DROPPED.add(evicted);
    }
    crate::sink::dispatch(&e);
}

/// Snapshot of the journal's current contents, oldest first.
pub fn events() -> Vec<Event> {
    with_journal(|j| j.ring.iter().cloned().collect())
}

/// Number of events evicted from the ring so far.
pub fn dropped() -> u64 {
    with_journal(|j| j.dropped)
}

/// Changes the ring capacity (evicting immediately if shrinking).
pub fn set_capacity(capacity: usize) {
    let evicted = with_journal(|j| {
        j.capacity = capacity.max(1);
        let mut evicted = 0u64;
        while j.ring.len() > j.capacity {
            j.ring.pop_front();
            j.dropped += 1;
            evicted += 1;
        }
        evicted
    });
    if evicted > 0 {
        crate::metrics::JOURNAL_DROPPED.add(evicted);
    }
}

/// Clears the journal and its eviction count.
pub fn reset() {
    with_journal(|j| {
        let capacity = j.capacity;
        *j = Journal {
            capacity,
            ..Journal::default()
        };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_eviction() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        set_capacity(3);
        for i in 0..5 {
            event(EventKind::IndexAccepted, format!("ix{i}"), "");
        }
        crate::disable();
        let evs = events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].target, "ix2");
        assert_eq!(evs[2].target, "ix4");
        assert_eq!(dropped(), 2);
        // Evictions also surface on the journal_dropped counter so a
        // snapshot (or /metrics scrape) shows the loss without polling
        // `dropped()`.
        assert_eq!(
            crate::snapshot().counter("telemetry.journal_dropped"),
            Some(2)
        );
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        set_capacity(DEFAULT_CAPACITY);
        crate::reset();
    }
}
