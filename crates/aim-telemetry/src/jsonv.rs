//! A minimal JSON reader for validating and inspecting our own artifacts.
//!
//! The workspace emits JSON by hand (no serde); tests and smoke gates need
//! to prove that output actually parses and carries the expected fields.
//! This is a strict recursive-descent parser over the full JSON grammar —
//! small, allocation-happy, and meant for test/CI paths, not hot loops.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for part in path.split('/') {
            node = node.get(part)?;
        }
        Some(node)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not stitched (our own
                            // emitter never produces them); replace.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // the sequence length from the lead byte is trustworthy).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents_we_emit() {
        let doc = r#"{"label":"x","n":-1.5e2,"ok":true,"none":null,
                      "arr":[1,2,[3]],"obj":{"a":"b \"quoted\"\n"}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.path("label").and_then(Json::as_str), Some("x"));
        assert_eq!(v.path("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(v.path("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.path("none"), Some(&Json::Null));
        assert_eq!(v.path("arr").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.path("obj/a").and_then(Json::as_str),
            Some("b \"quoted\"\n")
        );
    }

    #[test]
    fn roundtrips_the_artifact() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::histogram_record("h", 7.0);
        crate::journal::event(crate::EventKind::TuningPass, "p", "d\"q\"");
        crate::disable();
        let v = parse(&crate::report::artifact_json("rt")).expect("artifact parses");
        assert_eq!(v.path("label").and_then(Json::as_str), Some("rt"));
        assert!(v.path("histograms/h/p50").and_then(Json::as_f64).is_some());
        assert_eq!(v.path("events_dropped").and_then(Json::as_f64), Some(0.0));
        crate::reset();
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"\\x\"", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
