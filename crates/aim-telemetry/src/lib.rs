//! Zero-dependency observability for the AIM advisor pipeline.
//!
//! The paper's AIM runs continuously against production traffic and must be
//! debuggable when it mis-tunes (§VII); this crate is the repro's
//! first-class instrumentation layer. It is std-only and provides three
//! primitives, wired through every crate of the workspace:
//!
//! * **Spans** ([`span`]) — RAII timers forming a phase tree. Nested spans
//!   aggregate by name into a per-thread [`ProfileNode`] tree, the single
//!   timing source of truth for "algorithm runtime" reporting.
//! * **Counters / gauges / histograms** ([`metrics`]) — a fixed taxonomy of
//!   atomic counters (what-if calls, plans evaluated, rows read, ...) plus a
//!   `Mutex`-guarded registry for ad-hoc counters, gauges and log₂-bucket
//!   histograms.
//! * **Event journal** ([`journal`]) — a bounded ring buffer of structured
//!   events (plan chosen, candidate merged, index accepted/rejected,
//!   regression detected, validation verdict) fanned out to pluggable
//!   [`sink::EventSink`]s: in-memory for tests, JSON-lines for `results/`.
//!
//! Telemetry is **off by default**. When disabled, spans skip all
//! bookkeeping (one atomic load + one `Instant::now`), counters are no-ops,
//! and events vanish — the advisor hot path stays within noise of the
//! uninstrumented build. Enable it around the region you want profiled:
//!
//! ```
//! use aim_telemetry as tel;
//!
//! tel::reset();
//! tel::enable();
//! {
//!     let _pass = tel::span("tune");
//!     {
//!         let _gen = tel::span("candidate_generation");
//!         tel::metrics::WHATIF_CALLS.add(3);
//!     }
//!     tel::journal::event(
//!         tel::journal::EventKind::IndexAccepted,
//!         "aim_orders_customer",
//!         "benefit 812.0",
//!     );
//! }
//! tel::disable();
//!
//! let profile = tel::take_profile();
//! assert_eq!(profile.children[0].name, "tune");
//! assert_eq!(profile.children[0].children[0].name, "candidate_generation");
//! assert_eq!(tel::metrics::WHATIF_CALLS.get(), 3);
//! assert_eq!(tel::journal::events().len(), 1);
//! ```

pub mod journal;
pub mod jsonv;
pub mod metrics;
pub mod report;
pub mod serve;
pub mod sink;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use journal::{event, events, Event, EventKind};
pub use metrics::{
    scope, scope_phase, snapshot, Counter, HistogramSnapshot, Snapshot, TelemetryScope,
};
pub use slo::{SloRule, SloStat, SloStatus};
pub use report::{render_counters, render_profile, write_artifact};
pub use serve::{
    clear_ledger_source, render_prometheus, set_ledger_source, IntrospectionServer,
};
pub use sink::{add_sink, clear_sinks, EventSink, JsonLinesSink, MemorySink};
pub use span::{
    profile_snapshot, publish_profile, published_profile, span, take_profile, ProfileNode,
    SpanGuard,
};
pub use timeseries::{Window, WindowHistogram};
pub use trace::{fork, AdoptGuard, TraceContext};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off (process-wide). Open spans keep timing
/// but close normally; new spans, counter updates and events are skipped.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when telemetry collection is on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all collected state: counters, gauges, histograms, labeled
/// series, the event journal, the calling thread's span profile, the
/// time-series ring, the trace recorder and registered SLO rules.
/// Registered sinks are kept (use [`clear_sinks`] to drop them).
pub fn reset() {
    metrics::reset();
    journal::reset();
    span::reset();
    timeseries::reset();
    trace::reset();
    slo::clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Telemetry state is process-global; tests touching it serialize here.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_and_toggles() {
        let _g = lock();
        reset();
        disable();
        assert!(!is_enabled());
        metrics::WHATIF_CALLS.incr();
        assert_eq!(metrics::WHATIF_CALLS.get(), 0);
        {
            let _s = span("ignored");
        }
        assert!(profile_snapshot().children.is_empty());
        event(EventKind::PlanChosen, "t", "d");
        assert!(events().is_empty());

        enable();
        assert!(is_enabled());
        metrics::WHATIF_CALLS.incr();
        assert_eq!(metrics::WHATIF_CALLS.get(), 1);
        disable();
        reset();
    }

    #[test]
    fn span_elapsed_works_even_when_disabled() {
        let _g = lock();
        disable();
        let s = span("x");
        assert!(s.elapsed() <= std::time::Duration::from_secs(1));
    }
}
