//! Counters, gauges and histograms — flat and dimensional.
//!
//! The well-known instruments of the advisor pipeline are static atomic
//! [`Counter`]s (zero contention, no allocation). Ad-hoc counters, gauges
//! and log₂-bucket histograms live in a `Mutex`-guarded registry keyed by
//! name. Everything is a no-op while telemetry is disabled, and
//! [`snapshot`] captures the whole lot for reports and JSON artifacts.
//!
//! On top of the flat registry sits a *dimensional* one: every instrument
//! can carry a small bounded label set (`tenant`, `phase`, `backend`, …).
//! Labeled series live in a lock-sharded registry keyed by the instrument
//! name plus interned label values, so the per-observation cost is one
//! shard lock and one map probe. A hard cardinality cap bounds memory:
//! once [`series_cap`] distinct series exist, new series deterministically
//! fold their `tenant` label into `"__other__"` and bump
//! `telemetry.series_dropped`. A thread-local [`TelemetryScope`]
//! (tenant + phase) makes the labeling implicit: while a scope is active,
//! every flat instrument call on that thread also records a labeled twin,
//! so call sites never change. Snapshots render labeled series as
//! `name{k="v",…}` strings (stable key order, escaped values), which lets
//! the timeseries ring, artifacts and diffing work on them unchanged.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Const-constructible so counters can be statics.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while telemetry is disabled). Under an active
    /// [`TelemetryScope`] the observation also lands in the scope-labeled
    /// twin series, so the flat value stays the all-tenant total.
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
            if let Some(sc) = current_scope() {
                scoped_counter_add(self.name, sc, n);
            }
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` to the flat value only, ignoring any active scope. Used
    /// by the labeled registry's own health accounting so a fold can
    /// never recurse into another fold.
    fn add_unscoped(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------ taxonomy
// The fixed instrument set wired through the workspace. Names are
// `layer.instrument`; layers mirror the crates.

/// Optimizer what-if invocations (advisory plans + DML maintenance costing).
pub static WHATIF_CALLS: Counter = Counter::new("exec.whatif_calls");
/// What-if evaluations answered from the memo cache (optimizer calls saved).
pub static WHATIF_CACHE_HITS: Counter = Counter::new("exec.whatif_cache_hits");
/// What-if evaluations that missed the memo cache and were planned.
pub static WHATIF_CACHE_MISSES: Counter = Counter::new("exec.whatif_cache_misses");
/// All planner invocations, advisory and execution-bound.
pub static PLANS_EVALUATED: Counter = Counter::new("exec.plans_evaluated");
/// Statements run by the executor.
pub static STATEMENTS_EXECUTED: Counter = Counter::new("exec.statements");
/// Rows examined by the executor.
pub static ROWS_READ: Counter = Counter::new("exec.rows_read");
/// Pages read by the executor.
pub static PAGES_READ: Counter = Counter::new("exec.pages_read");
/// B+-tree descents performed by the executor.
pub static INDEX_SEEKS: Counter = Counter::new("exec.seeks");
/// Executions ingested by the workload monitor.
pub static MONITOR_RECORDS: Counter = Counter::new("monitor.records");
/// Candidate indexes produced by structural generation.
pub static CANDIDATES_GENERATED: Counter = Counter::new("aim.candidates_generated");
/// Pairwise partial-order merges that succeeded.
pub static PO_MERGES: Counter = Counter::new("aim.partial_order_merges");
/// Clone-validation rounds executed.
pub static VALIDATION_ROUNDS: Counter = Counter::new("aim.validation_rounds");
/// Indexes materialized on production by tuning passes.
pub static INDEXES_CREATED: Counter = Counter::new("aim.indexes_created");
/// Candidates rejected (validation or materialization).
pub static INDEXES_REJECTED: Counter = Counter::new("aim.indexes_rejected");
/// Regressions flagged by the continuous detector.
pub static REGRESSIONS_DETECTED: Counter = Counter::new("aim.regressions_detected");
/// Phase retries after a transient (injected) failure.
pub static TUNING_RETRIES: Counter = Counter::new("aim.retries");
/// Passes that finished in a degraded mode (sequential fallback or a
/// shrunken validation sample) after repeated transient failures.
pub static DEGRADED_PASSES: Counter = Counter::new("aim.degraded_passes");
/// Passes aborted (deadline, cancellation, or retries exhausted) and
/// rolled back.
pub static PASSES_ABORTED: Counter = Counter::new("aim.passes_aborted");
/// Batched what-if evaluations (one per `eval_select_batch` call).
pub static SELECTION_BATCHES: Counter = Counter::new("selection.batch.count");
/// Batch members that reused the batch's shared binding / predicate /
/// selectivity derivation instead of re-deriving it from scratch
/// (planner passes beyond a batch's first).
pub static SELECTION_BATCH_BINDING_REUSE: Counter =
    Counter::new("selection.batch.binding_reuse");
/// Batch members served by an identical-projection plan from the same
/// batch without any planner pass at all.
pub static SELECTION_BATCH_PLAN_REUSE: Counter = Counter::new("selection.batch.plan_reuse");
/// Simplex iterations performed by the LP selection strategy.
pub static SELECTION_LP_ITERATIONS: Counter = Counter::new("selection.lp.iterations");
/// Events evicted from the journal ring buffer before anyone read them.
pub static JOURNAL_DROPPED: Counter = Counter::new("telemetry.journal_dropped");
/// Event-sink write failures (the event is lost; each failure counts).
pub static SINK_ERRORS: Counter = Counter::new("telemetry.sink_errors");
/// Time-series windows closed by [`crate::timeseries::tick`].
pub static TIMESERIES_WINDOWS: Counter = Counter::new("timeseries.windows");
/// Worker span roots stitched into a parent profile by
/// [`crate::trace::TraceContext::stitch`].
pub static TRACE_SPANS_STITCHED: Counter = Counter::new("trace.spans_stitched");
/// Tenants whose tuning pass completed inside a fleet run.
pub static FLEET_SHARDS_TUNED: Counter = Counter::new("fleet.shards_tuned");
/// Tenants granted more than the uniform per-shard budget share by the
/// fleet-level knapsack allocation.
pub static FLEET_BUDGET_TRANSFERS: Counter = Counter::new("fleet.budget_transfers");
/// Cross-shard seed partial orders handed from hot to cold tenants.
pub static FLEET_SEEDED_ORDERS: Counter = Counter::new("fleet.seeded_orders");
/// Tenant tuning passes that failed inside a fleet run (the fleet
/// continues; the failure is isolated to the tenant).
pub static FLEET_TENANT_FAILURES: Counter = Counter::new("fleet.tenant_failures");
/// Labeled observations whose new series would exceed the cardinality cap
/// and were folded into the `tenant="__other__"` bucket instead.
pub static SERIES_DROPPED: Counter = Counter::new("telemetry.series_dropped");

static BUILTIN: &[&Counter] = &[
    &WHATIF_CALLS,
    &WHATIF_CACHE_HITS,
    &WHATIF_CACHE_MISSES,
    &PLANS_EVALUATED,
    &STATEMENTS_EXECUTED,
    &ROWS_READ,
    &PAGES_READ,
    &INDEX_SEEKS,
    &MONITOR_RECORDS,
    &CANDIDATES_GENERATED,
    &PO_MERGES,
    &VALIDATION_ROUNDS,
    &INDEXES_CREATED,
    &INDEXES_REJECTED,
    &REGRESSIONS_DETECTED,
    &TUNING_RETRIES,
    &DEGRADED_PASSES,
    &PASSES_ABORTED,
    &SELECTION_BATCHES,
    &SELECTION_BATCH_BINDING_REUSE,
    &SELECTION_BATCH_PLAN_REUSE,
    &SELECTION_LP_ITERATIONS,
    &JOURNAL_DROPPED,
    &SINK_ERRORS,
    &TIMESERIES_WINDOWS,
    &TRACE_SPANS_STITCHED,
    &FLEET_SHARDS_TUNED,
    &FLEET_BUDGET_TRANSFERS,
    &FLEET_SEEDED_ORDERS,
    &FLEET_TENANT_FAILURES,
    &SERIES_DROPPED,
];

/// The fallback HELP line for names nobody registered a description for.
const HELP_FALLBACK: &str = "AIM telemetry instrument (no description registered).";

/// Whether `name` (labels stripped) has a registered, non-generic HELP
/// description. The exposition well-formedness test uses this to catch
/// new instruments that ship without documentation.
pub fn has_help(name: &str) -> bool {
    help_for(name) != HELP_FALLBACK
}

/// One-line description of an instrument, for the Prometheus `# HELP`
/// exposition. Covers the fixed taxonomy and the well-known registry
/// names; anything else gets a generic line (the exposition format
/// requires *some* HELP text, not a registry). Labeled series names
/// (`name{k="v"}`) resolve through their base name.
pub fn help_for(name: &str) -> &'static str {
    match series_base(name) {
        "exec.whatif_calls" => "Optimizer what-if invocations (advisory plans + DML costing).",
        "exec.whatif_cache_hits" => "What-if evaluations answered from the memo cache.",
        "exec.whatif_cache_misses" => "What-if evaluations that missed the memo cache.",
        "exec.plans_evaluated" => "Planner invocations, advisory and execution-bound.",
        "exec.statements" => "Statements run by the executor.",
        "exec.rows_read" => "Rows examined by the executor.",
        "exec.pages_read" => "Pages read by the executor.",
        "exec.seeks" => "B+-tree descents performed by the executor.",
        "exec.select_cost" => "Estimated cost of executed SELECT statements (latency proxy).",
        "monitor.records" => "Executions ingested by the workload monitor.",
        "aim.candidates_generated" => "Candidate indexes produced by structural generation.",
        "aim.partial_order_merges" => "Pairwise partial-order merges that succeeded.",
        "aim.validation_rounds" => "Clone-validation rounds executed.",
        "aim.indexes_created" => "Indexes materialized on production by tuning passes.",
        "aim.indexes_rejected" => "Candidates rejected during validation or materialization.",
        "aim.regressions_detected" => "Regressions flagged by the continuous detector.",
        "aim.retries" => "Phase retries after a transient failure.",
        "aim.degraded_passes" => "Passes that finished in a degraded mode.",
        "aim.passes_aborted" => "Passes aborted and rolled back.",
        "selection.batch.count" => "Batched what-if evaluations.",
        "selection.batch.binding_reuse" => "Batch members reusing the shared binding derivation.",
        "selection.batch.plan_reuse" => "Batch members served by an identical-projection plan.",
        "selection.lp.iterations" => "Simplex iterations performed by the LP selector.",
        "telemetry.journal_dropped" => "Events evicted from the journal ring before being read.",
        "telemetry.sink_errors" => "Event-sink write failures (events lost).",
        "timeseries.windows" => "Time-series windows closed by timeseries ticks.",
        "trace.spans_stitched" => "Worker span roots stitched into a parent profile.",
        "fleet.shards_tuned" => "Tenant tuning passes completed inside fleet runs.",
        "fleet.budget_transfers" => "Tenants granted more than the uniform budget share.",
        "fleet.seeded_orders" => "Cross-shard seed partial orders handed to cold tenants.",
        "fleet.tenant_failures" => "Tenant tuning passes that failed inside fleet runs.",
        "fleet.tenant_duration" => "Per-tenant tuning wall clock inside fleet runs (ms).",
        "fleet.budget_granted_bytes" => "Storage budget granted to a tenant by fleet allocation.",
        "fleet.budget_used_bytes" => "Secondary-index bytes actually built for a tenant.",
        "telemetry.series_dropped" => {
            "Labeled observations folded into tenant=__other__ by the cardinality cap."
        }
        "telemetry.series_active" => "Distinct labeled series currently tracked.",
        "sentinel.state" => "Latency sentinel state (0=idle, 1=armed, 2=regressed).",
        "sentinel.rollbacks" => "Index rollbacks ordered by the latency sentinel.",
        "slo.rules" => "Declarative SLO rules currently registered.",
        "slo.firing" => "SLO rules currently firing on multi-window burn rate.",
        "slo.evaluations" => "SLO evaluation sweeps over the timeseries ring.",
        "aim.candidate_width" => "Column width of generated candidate indexes.",
        "selection.batch.size" => {
            "Hypothetical index configurations costed per batched what-if call."
        }
        "baselines.cost_cache_hits" => "Baseline-advisor cost evaluations served from cache.",
        "db.index_bytes" => "Estimated bytes across all indexes on the tuned database.",
        "db.secondary_index_bytes" => "Estimated bytes across secondary indexes (budget basis).",
        "exec.whatif_cost" => "Estimated cost of what-if-priced statements.",
        "monitor.selected_queries" => "Statements selected by the monitor for tuning windows.",
        "monitor.window_queries" => "Statements observed in the current monitor window.",
        "storage.bp.hit" => "Buffer-pool page hits.",
        "storage.bp.miss" => "Buffer-pool page misses (disk reads).",
        "storage.bp.evict" => "Buffer-pool page evictions.",
        "storage.wal.bytes" => "Bytes appended to the write-ahead log.",
        "storage.wal.fsyncs" => "WAL fsync batches issued.",
        _ => HELP_FALLBACK,
    }
}

// ------------------------------------------------------------ registry

const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `buckets[i]` counts values in `(2^(i-1), 2^i]`; bucket 0 is `<= 1`.
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v <= 1.0 {
            0
        } else {
            (v.log2().ceil() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// `(inclusive upper bound, count)` for non-empty buckets.
    pub buckets: Vec<(f64, u64)>,
    /// Median estimate interpolated from the log₂ buckets.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the log₂ bucket holding the target rank. The true value lies
    /// somewhere in `(upper/2, upper]`, so the estimate is off by at most
    /// one bucket width; the observed `min`/`max` clamp the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            let before = cum as f64;
            cum += n;
            if cum as f64 >= target {
                let lower = if upper <= 1.0 { 0.0 } else { upper / 2.0 };
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                let est = lower + frac * (upper - lower);
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn fill_quantiles(mut self) -> Self {
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
        self
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Adds to an ad-hoc named counter in the registry. Under an active
/// [`TelemetryScope`] the observation also lands in the scope-labeled
/// twin series.
pub fn counter_add(name: &'static str, n: u64) {
    if crate::is_enabled() {
        with_registry(|r| *r.counters.entry(name).or_insert(0) += n);
        if let Some(sc) = current_scope() {
            scoped_counter_add(name, sc, n);
        }
    }
}

/// Sets a gauge to an instantaneous value (scope-labeled twin included).
pub fn gauge_set(name: &'static str, v: i64) {
    if crate::is_enabled() {
        with_registry(|r| {
            r.gauges.insert(name, v);
        });
        if let Some(sc) = current_scope() {
            scoped_gauge_set(name, sc, v);
        }
    }
}

/// Records one observation into a log₂-bucket histogram (scope-labeled
/// twin included).
pub fn histogram_record(name: &'static str, v: f64) {
    if crate::is_enabled() {
        with_registry(|r| r.histograms.entry(name).or_default().record(v));
        if let Some(sc) = current_scope() {
            scoped_histogram_record(name, sc, v);
        }
    }
}

// ------------------------------------------------- dimensional registry

/// Interned label-value handle. Values are interned once (at scope
/// creation or on an explicit labeled call) so hot-path series keys
/// compare as integers, never strings.
type Sym = u32;

#[derive(Default)]
struct Interner {
    map: BTreeMap<String, Sym>,
    values: Vec<String>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

fn with_interner<R>(f: impl FnOnce(&mut Interner) -> R) -> R {
    let mut guard = INTERNER.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Interner::default))
}

fn intern(value: &str) -> Sym {
    with_interner(|int| match int.map.get(value) {
        Some(&s) => s,
        None => {
            let s = int.values.len() as Sym;
            int.values.push(value.to_string());
            int.map.insert(value.to_string(), s);
            s
        }
    })
}

/// The tenant bucket that over-cap series fold into.
pub const OTHER_TENANT: &str = "__other__";

/// Default hard cap on distinct labeled series across all shards.
pub const DEFAULT_SERIES_CAP: usize = 512;

static SERIES_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_SERIES_CAP);
static SERIES_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Current hard cap on distinct labeled series.
pub fn series_cap() -> usize {
    SERIES_CAP.load(Ordering::Relaxed)
}

/// Sets the cardinality cap. Existing series are never evicted; only the
/// admission of *new* series consults the cap.
pub fn set_series_cap(cap: usize) {
    SERIES_CAP.store(cap, Ordering::Relaxed);
}

/// Distinct labeled series currently tracked (including fold buckets).
pub fn series_count() -> usize {
    SERIES_COUNT.load(Ordering::Relaxed)
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: &'static str,
    /// `(label key, interned value)`, sorted by label key.
    labels: Vec<(&'static str, Sym)>,
}

#[derive(Default)]
struct LabelShard {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, i64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

const LABEL_SHARDS: usize = 8;

static LSHARDS: [Mutex<Option<LabelShard>>; LABEL_SHARDS] =
    [const { Mutex::new(None) }; LABEL_SHARDS];

fn shard_of(name: &str, labels: &[(&'static str, Sym)]) -> usize {
    // FNV-1a over the name bytes, label keys and value symbols.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in name.bytes() {
        eat(b);
    }
    for (k, v) in labels {
        for b in k.bytes() {
            eat(b);
        }
        for b in v.to_le_bytes() {
            eat(b);
        }
    }
    (h as usize) % LABEL_SHARDS
}

#[derive(Clone, Copy)]
enum SeriesKind {
    Counter,
    Gauge,
    Histogram,
}

impl LabelShard {
    fn has(&self, kind: SeriesKind, key: &SeriesKey) -> bool {
        match kind {
            SeriesKind::Counter => self.counters.contains_key(key),
            SeriesKind::Gauge => self.gauges.contains_key(key),
            SeriesKind::Histogram => self.histograms.contains_key(key),
        }
    }
}

/// Claims one cap slot for a new series; `false` means the cap is full
/// and the caller must fold.
fn try_claim_series_slot() -> bool {
    let cap = SERIES_CAP.load(Ordering::Relaxed);
    let prev = SERIES_COUNT.fetch_add(1, Ordering::Relaxed);
    if prev < cap {
        true
    } else {
        SERIES_COUNT.fetch_sub(1, Ordering::Relaxed);
        false
    }
}

/// Core labeled write: update-in-place when the series exists, admit it
/// when the cap allows, otherwise fold the `tenant` label into
/// [`OTHER_TENANT`] and apply there. At most one shard lock is held at a
/// time (the fold re-probes under its own lock), so shard order can never
/// deadlock. Fold buckets are always admitted — their cardinality is
/// bounded by the non-tenant label space — and each folded observation
/// bumps `telemetry.series_dropped`.
fn labeled_update(
    name: &'static str,
    labels: &[(&'static str, Sym)],
    kind: SeriesKind,
    apply: impl FnOnce(&mut LabelShard, SeriesKey),
) {
    debug_assert!(labels.windows(2).all(|w| w[0].0 <= w[1].0), "labels sorted");
    let key = SeriesKey {
        name,
        labels: labels.to_vec(),
    };
    {
        let idx = shard_of(name, labels);
        let mut guard = LSHARDS[idx].lock().unwrap_or_else(|e| e.into_inner());
        let shard = guard.get_or_insert_with(LabelShard::default);
        if shard.has(kind, &key) || try_claim_series_slot() {
            apply(shard, key);
            return;
        }
    }
    // Over the cap: fold deterministically into tenant="__other__".
    SERIES_DROPPED.add_unscoped(1);
    let other = intern(OTHER_TENANT);
    let mut folded = key.labels;
    match folded.iter_mut().find(|(k, _)| *k == "tenant") {
        Some(slot) => slot.1 = other,
        None => {
            folded.push(("tenant", other));
            folded.sort_by_key(|&(k, _)| k);
        }
    }
    let idx = shard_of(name, &folded);
    let fkey = SeriesKey {
        name,
        labels: folded,
    };
    let mut guard = LSHARDS[idx].lock().unwrap_or_else(|e| e.into_inner());
    let shard = guard.get_or_insert_with(LabelShard::default);
    if !shard.has(kind, &fkey) {
        SERIES_COUNT.fetch_add(1, Ordering::Relaxed);
    }
    apply(shard, fkey);
}

fn series_counter_add(name: &'static str, labels: &[(&'static str, Sym)], n: u64) {
    labeled_update(name, labels, SeriesKind::Counter, |shard, key| {
        *shard.counters.entry(key).or_insert(0) += n;
    });
}

fn series_gauge_set(name: &'static str, labels: &[(&'static str, Sym)], v: i64) {
    labeled_update(name, labels, SeriesKind::Gauge, |shard, key| {
        shard.gauges.insert(key, v);
    });
}

fn series_histogram_record(name: &'static str, labels: &[(&'static str, Sym)], v: f64) {
    labeled_update(name, labels, SeriesKind::Histogram, |shard, key| {
        shard.histograms.entry(key).or_default().record(v);
    });
}

fn intern_labels(labels: &[(&'static str, &str)]) -> Vec<(&'static str, Sym)> {
    let mut out: Vec<(&'static str, Sym)> =
        labels.iter().map(|&(k, v)| (k, intern(v))).collect();
    out.sort_by_key(|&(k, _)| k);
    out
}

/// Adds to a labeled counter series (no-op while telemetry is disabled).
pub fn counter_add_labeled(name: &'static str, labels: &[(&'static str, &str)], n: u64) {
    if crate::is_enabled() {
        series_counter_add(name, &intern_labels(labels), n);
    }
}

/// Sets a labeled gauge series to an instantaneous value.
pub fn gauge_set_labeled(name: &'static str, labels: &[(&'static str, &str)], v: i64) {
    if crate::is_enabled() {
        series_gauge_set(name, &intern_labels(labels), v);
    }
}

/// Records one observation into a labeled histogram series.
pub fn histogram_record_labeled(name: &'static str, labels: &[(&'static str, &str)], v: f64) {
    if crate::is_enabled() {
        series_histogram_record(name, &intern_labels(labels), v);
    }
}

// ------------------------------------------------------- telemetry scope

/// Thread-local scope payload: interned tenant + optional phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScopeData {
    tenant: Sym,
    phase: Option<Sym>,
}

impl ScopeData {
    /// Implicit label set, sorted by label key (`"phase" < "tenant"`).
    fn label_array(self) -> ([(&'static str, Sym); 2], usize) {
        match self.phase {
            Some(p) => ([("phase", p), ("tenant", self.tenant)], 2),
            None => ([("tenant", self.tenant), ("tenant", self.tenant)], 1),
        }
    }
}

thread_local! {
    static SCOPE: Cell<Option<ScopeData>> = const { Cell::new(None) };
}

#[inline]
fn current_scope() -> Option<ScopeData> {
    SCOPE.with(|s| s.get())
}

fn scoped_counter_add(name: &'static str, sc: ScopeData, n: u64) {
    let (arr, len) = sc.label_array();
    series_counter_add(name, &arr[..len], n);
}

fn scoped_gauge_set(name: &'static str, sc: ScopeData, v: i64) {
    let (arr, len) = sc.label_array();
    series_gauge_set(name, &arr[..len], v);
}

fn scoped_histogram_record(name: &'static str, sc: ScopeData, v: f64) {
    let (arr, len) = sc.label_array();
    series_histogram_record(name, &arr[..len], v);
}

/// RAII guard that scopes every flat instrument call on this thread to a
/// tenant (and optionally a phase): each observation also lands in a
/// `name{tenant="…"}` labeled twin. Scopes nest; dropping restores the
/// previous scope. Creating a scope while telemetry is disabled is free
/// (no interning, no TLS write).
#[derive(Debug)]
pub struct TelemetryScope {
    prev: Option<ScopeData>,
    active: bool,
    /// TLS restoration is thread-affine; keep the guard on its thread.
    _not_send: PhantomData<*const ()>,
}

impl TelemetryScope {
    /// Enters a tenant scope.
    pub fn enter(tenant: &str) -> Self {
        Self::enter_inner(tenant, None)
    }

    /// Enters a tenant scope with a phase label (`probe`, `tune`, …).
    pub fn enter_phase(tenant: &str, phase: &str) -> Self {
        Self::enter_inner(tenant, Some(phase))
    }

    fn enter_inner(tenant: &str, phase: Option<&str>) -> Self {
        if !crate::is_enabled() {
            return Self {
                prev: None,
                active: false,
                _not_send: PhantomData,
            };
        }
        let data = ScopeData {
            tenant: intern(tenant),
            phase: phase.map(intern),
        };
        let prev = SCOPE.with(|s| s.replace(Some(data)));
        Self {
            prev,
            active: true,
            _not_send: PhantomData,
        }
    }
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        if self.active {
            SCOPE.with(|s| s.set(self.prev));
        }
    }
}

/// Enters a tenant scope (see [`TelemetryScope`]).
pub fn scope(tenant: &str) -> TelemetryScope {
    TelemetryScope::enter(tenant)
}

/// Enters a tenant+phase scope (see [`TelemetryScope`]).
pub fn scope_phase(tenant: &str, phase: &str) -> TelemetryScope {
    TelemetryScope::enter_phase(tenant, phase)
}

/// The tenant of the active scope on this thread, if any.
pub fn current_tenant() -> Option<String> {
    let sc = current_scope()?;
    with_interner(|int| int.values.get(sc.tenant as usize).cloned())
}

// ------------------------------------------------------ series encoding

/// Escapes a label value per Prometheus exposition format 0.0.4:
/// `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Encodes a labeled series name as `name{k="v",…}` with label keys in
/// sorted order and values escaped. No labels → the bare name.
pub fn encode_series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by_key(|&(k, _)| k);
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// The base instrument name of a (possibly labeled) series name.
pub fn series_base(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Parses an encoded series name back into `(base, labels)`, un-escaping
/// label values. Malformed label blobs yield the whole string as the base
/// with no labels.
pub fn parse_series(encoded: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = encoded.find('{') else {
        return (encoded.to_string(), Vec::new());
    };
    let base = encoded[..brace].to_string();
    let blob = &encoded[brace + 1..];
    let mut labels = Vec::new();
    let mut chars = blob.chars().peekable();
    loop {
        match chars.peek() {
            Some('}') | None => break,
            Some(',') => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return (encoded.to_string(), Vec::new());
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(esc) => value.push(esc),
                    None => return (encoded.to_string(), Vec::new()),
                },
                '"' => {
                    closed = true;
                    break;
                }
                _ => value.push(c),
            }
        }
        if !closed {
            return (encoded.to_string(), Vec::new());
        }
        labels.push((key, value));
    }
    (base, labels)
}

/// The `tenant` label of an encoded series name, if present.
pub fn series_tenant(encoded: &str) -> Option<String> {
    let (_, labels) = parse_series(encoded);
    labels.into_iter().find(|(k, _)| k == "tenant").map(|(_, v)| v)
}

/// Point-in-time view of every instrument.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value; builtin counters first, registry after.
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Captures all counters, gauges and histograms.
pub fn snapshot() -> Snapshot {
    let mut out = Snapshot::default();
    for c in BUILTIN {
        out.counters.push((c.name().to_string(), c.get()));
    }
    with_registry(|r| {
        for (name, v) in &r.counters {
            out.counters.push((name.to_string(), *v));
        }
        for (name, v) in &r.gauges {
            out.gauges.push((name.to_string(), *v));
        }
        for (name, h) in &r.histograms {
            out.histograms.push((name.to_string(), histogram_to_snapshot(h)));
        }
    });
    append_labeled(&mut out);
    out
}

fn histogram_to_snapshot(h: &Histogram) -> HistogramSnapshot {
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| ((1u64 << i) as f64, *c))
        .collect();
    HistogramSnapshot {
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        buckets,
        p50: 0.0,
        p90: 0.0,
        p99: 0.0,
    }
    .fill_quantiles()
}

/// Drains every label shard into encoded `name{k="v"}` entries, appended
/// after the flat entries in sorted-name order. Shard locks and the
/// interner lock are never held together.
fn append_labeled(out: &mut Snapshot) {
    let mut counters: Vec<(SeriesKey, u64)> = Vec::new();
    let mut gauges: Vec<(SeriesKey, i64)> = Vec::new();
    let mut histograms: Vec<(SeriesKey, HistogramSnapshot)> = Vec::new();
    for shard in &LSHARDS {
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let Some(shard) = guard.as_ref() else { continue };
        counters.extend(shard.counters.iter().map(|(k, v)| (k.clone(), *v)));
        gauges.extend(shard.gauges.iter().map(|(k, v)| (k.clone(), *v)));
        histograms.extend(
            shard
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), histogram_to_snapshot(h))),
        );
    }
    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() {
        return;
    }
    let encode = |int: &mut Interner, key: &SeriesKey| -> String {
        let resolved: Vec<(&str, &str)> = key
            .labels
            .iter()
            .map(|&(k, v)| {
                let val = int.values.get(v as usize).map(String::as_str).unwrap_or("");
                (k, val)
            })
            .collect();
        encode_series(key.name, &resolved)
    };
    with_interner(|int| {
        let mut enc_counters: Vec<(String, u64)> = counters
            .iter()
            .map(|(k, v)| (encode(int, k), *v))
            .collect();
        let mut enc_gauges: Vec<(String, i64)> =
            gauges.iter().map(|(k, v)| (encode(int, k), *v)).collect();
        let mut enc_histograms: Vec<(String, HistogramSnapshot)> = histograms
            .iter()
            .map(|(k, h)| (encode(int, k), h.clone()))
            .collect();
        enc_counters.sort_by(|a, b| a.0.cmp(&b.0));
        enc_gauges.sort_by(|a, b| a.0.cmp(&b.0));
        enc_histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out.counters.extend(enc_counters);
        out.gauges.extend(enc_gauges);
        out.histograms.extend(enc_histograms);
    });
}

/// Zeroes all instruments, drops every labeled series, clears the label
/// interner and restores the default cardinality cap.
pub fn reset() {
    for c in BUILTIN {
        c.clear();
    }
    with_registry(|r| *r = Registry::default());
    for shard in &LSHARDS {
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        *guard = None;
    }
    with_interner(|int| *int = Interner::default());
    SERIES_COUNT.store(0, Ordering::Relaxed);
    SERIES_CAP.store(DEFAULT_SERIES_CAP, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        WHATIF_CALLS.add(5);
        counter_add("custom.hits", 2);
        gauge_set("custom.depth", -3);
        histogram_record("custom.cost", 0.5);
        histogram_record("custom.cost", 3.0);
        histogram_record("custom.cost", 3000.0);
        crate::disable();

        let s = snapshot();
        assert_eq!(s.counter("exec.whatif_calls"), Some(5));
        assert_eq!(s.counter("custom.hits"), Some(2));
        assert_eq!(s.gauges, vec![("custom.depth".to_string(), -3)]);
        let (name, h) = &s.histograms[0];
        assert_eq!(name, "custom.cost");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 3000.0);
        // 0.5 → bucket ≤1; 3.0 → ≤4; 3000 → ≤4096.
        assert_eq!(h.buckets, vec![(1.0, 1), (4.0, 1), (4096.0, 1)]);

        crate::reset();
        assert_eq!(snapshot().counter("exec.whatif_calls"), Some(0));
        assert!(snapshot().histograms.is_empty());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        // 100 observations spread over three decades.
        for i in 1..=100 {
            histogram_record("q.cost", i as f64);
        }
        crate::disable();

        let s = snapshot();
        let (_, h) = &s.histograms[0];
        assert_eq!(h.count, 100);
        // Quantiles are monotone, within [min, max], and roughly placed:
        // the p50 of 1..=100 must land in the (32, 64] bucket.
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        assert!(h.p50 >= h.min && h.p99 <= h.max);
        assert!(h.p50 > 32.0 && h.p50 <= 64.0, "p50 = {}", h.p50);
        assert!(h.p99 > 64.0 && h.p99 <= 100.0, "p99 = {}", h.p99);
        // Degenerate histograms stay finite.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        crate::reset();
    }

    #[test]
    fn scope_labels_flat_instruments_and_preserves_totals() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _t = scope("acme");
            WHATIF_CALLS.add(3);
            counter_add("custom.hits", 2);
            histogram_record("custom.cost", 8.0);
            gauge_set("custom.depth", 7);
            {
                let _p = scope_phase("acme", "probe");
                assert_eq!(current_tenant().as_deref(), Some("acme"));
                counter_add("custom.hits", 1);
            }
            // Inner scope restored to the outer one, not cleared.
            assert_eq!(current_tenant().as_deref(), Some("acme"));
        }
        assert_eq!(current_tenant(), None);
        counter_add("custom.hits", 5); // unscoped
        crate::disable();

        let s = snapshot();
        // Flat values are the all-tenant totals.
        assert_eq!(s.counter("exec.whatif_calls"), Some(3));
        assert_eq!(s.counter("custom.hits"), Some(8));
        // Labeled twins carry the scoped share.
        assert_eq!(s.counter("exec.whatif_calls{tenant=\"acme\"}"), Some(3));
        assert_eq!(s.counter("custom.hits{tenant=\"acme\"}"), Some(2));
        assert_eq!(
            s.counter("custom.hits{phase=\"probe\",tenant=\"acme\"}"),
            Some(1)
        );
        assert!(s
            .gauges
            .iter()
            .any(|(n, v)| n == "custom.depth{tenant=\"acme\"}" && *v == 7));
        assert!(s
            .histograms
            .iter()
            .any(|(n, h)| n == "custom.cost{tenant=\"acme\"}" && h.count == 1));
        assert_eq!(s.counter("telemetry.series_dropped"), Some(0));
        crate::reset();
    }

    #[test]
    fn cardinality_cap_folds_into_other_bucket() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        set_series_cap(2);
        counter_add_labeled("cap.hits", &[("tenant", "a")], 1);
        counter_add_labeled("cap.hits", &[("tenant", "b")], 2);
        // Cap reached: c and d fold into __other__; a keeps updating.
        counter_add_labeled("cap.hits", &[("tenant", "c")], 4);
        counter_add_labeled("cap.hits", &[("tenant", "d")], 8);
        counter_add_labeled("cap.hits", &[("tenant", "a")], 16);
        crate::disable();

        let s = snapshot();
        assert_eq!(s.counter("cap.hits{tenant=\"a\"}"), Some(17));
        assert_eq!(s.counter("cap.hits{tenant=\"b\"}"), Some(2));
        assert_eq!(s.counter("cap.hits{tenant=\"c\"}"), None);
        assert_eq!(s.counter("cap.hits{tenant=\"__other__\"}"), Some(12));
        assert_eq!(s.counter("telemetry.series_dropped"), Some(2));
        // Totals are conserved across the fold.
        let total: u64 = s
            .counters
            .iter()
            .filter(|(n, _)| series_base(n) == "cap.hits")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 31);
        crate::reset();
        assert_eq!(series_count(), 0);
        assert_eq!(series_cap(), DEFAULT_SERIES_CAP);
    }

    #[test]
    fn series_encoding_roundtrips_hostile_values() {
        let hostile = "a\\b\"c\nd";
        let enc = encode_series("m.x", &[("tenant", hostile), ("phase", "p")]);
        assert_eq!(enc, "m.x{phase=\"p\",tenant=\"a\\\\b\\\"c\\nd\"}");
        let (base, labels) = parse_series(&enc);
        assert_eq!(base, "m.x");
        assert_eq!(
            labels,
            vec![
                ("phase".to_string(), "p".to_string()),
                ("tenant".to_string(), hostile.to_string())
            ]
        );
        assert_eq!(series_base(&enc), "m.x");
        assert_eq!(series_tenant(&enc).as_deref(), Some(hostile));
        assert_eq!(parse_series("plain.name"), ("plain.name".to_string(), vec![]));
        // help_for resolves through the base name.
        assert!(has_help("exec.whatif_calls{tenant=\"a\"}"));
        assert!(!has_help("no.such.metric"));
    }
}
