//! Counters, gauges and histograms.
//!
//! The well-known instruments of the advisor pipeline are static atomic
//! [`Counter`]s (zero contention, no allocation). Ad-hoc counters, gauges
//! and log₂-bucket histograms live in a `Mutex`-guarded registry keyed by
//! name. Everything is a no-op while telemetry is disabled, and
//! [`snapshot`] captures the whole lot for reports and JSON artifacts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Const-constructible so counters can be statics.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while telemetry is disabled).
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------ taxonomy
// The fixed instrument set wired through the workspace. Names are
// `layer.instrument`; layers mirror the crates.

/// Optimizer what-if invocations (advisory plans + DML maintenance costing).
pub static WHATIF_CALLS: Counter = Counter::new("exec.whatif_calls");
/// What-if evaluations answered from the memo cache (optimizer calls saved).
pub static WHATIF_CACHE_HITS: Counter = Counter::new("exec.whatif_cache_hits");
/// What-if evaluations that missed the memo cache and were planned.
pub static WHATIF_CACHE_MISSES: Counter = Counter::new("exec.whatif_cache_misses");
/// All planner invocations, advisory and execution-bound.
pub static PLANS_EVALUATED: Counter = Counter::new("exec.plans_evaluated");
/// Statements run by the executor.
pub static STATEMENTS_EXECUTED: Counter = Counter::new("exec.statements");
/// Rows examined by the executor.
pub static ROWS_READ: Counter = Counter::new("exec.rows_read");
/// Pages read by the executor.
pub static PAGES_READ: Counter = Counter::new("exec.pages_read");
/// B+-tree descents performed by the executor.
pub static INDEX_SEEKS: Counter = Counter::new("exec.seeks");
/// Executions ingested by the workload monitor.
pub static MONITOR_RECORDS: Counter = Counter::new("monitor.records");
/// Candidate indexes produced by structural generation.
pub static CANDIDATES_GENERATED: Counter = Counter::new("aim.candidates_generated");
/// Pairwise partial-order merges that succeeded.
pub static PO_MERGES: Counter = Counter::new("aim.partial_order_merges");
/// Clone-validation rounds executed.
pub static VALIDATION_ROUNDS: Counter = Counter::new("aim.validation_rounds");
/// Indexes materialized on production by tuning passes.
pub static INDEXES_CREATED: Counter = Counter::new("aim.indexes_created");
/// Candidates rejected (validation or materialization).
pub static INDEXES_REJECTED: Counter = Counter::new("aim.indexes_rejected");
/// Regressions flagged by the continuous detector.
pub static REGRESSIONS_DETECTED: Counter = Counter::new("aim.regressions_detected");
/// Phase retries after a transient (injected) failure.
pub static TUNING_RETRIES: Counter = Counter::new("aim.retries");
/// Passes that finished in a degraded mode (sequential fallback or a
/// shrunken validation sample) after repeated transient failures.
pub static DEGRADED_PASSES: Counter = Counter::new("aim.degraded_passes");
/// Passes aborted (deadline, cancellation, or retries exhausted) and
/// rolled back.
pub static PASSES_ABORTED: Counter = Counter::new("aim.passes_aborted");
/// Batched what-if evaluations (one per `eval_select_batch` call).
pub static SELECTION_BATCHES: Counter = Counter::new("selection.batch.count");
/// Batch members that reused the batch's shared binding / predicate /
/// selectivity derivation instead of re-deriving it from scratch
/// (planner passes beyond a batch's first).
pub static SELECTION_BATCH_BINDING_REUSE: Counter =
    Counter::new("selection.batch.binding_reuse");
/// Batch members served by an identical-projection plan from the same
/// batch without any planner pass at all.
pub static SELECTION_BATCH_PLAN_REUSE: Counter = Counter::new("selection.batch.plan_reuse");
/// Simplex iterations performed by the LP selection strategy.
pub static SELECTION_LP_ITERATIONS: Counter = Counter::new("selection.lp.iterations");
/// Events evicted from the journal ring buffer before anyone read them.
pub static JOURNAL_DROPPED: Counter = Counter::new("telemetry.journal_dropped");
/// Event-sink write failures (the event is lost; each failure counts).
pub static SINK_ERRORS: Counter = Counter::new("telemetry.sink_errors");
/// Time-series windows closed by [`crate::timeseries::tick`].
pub static TIMESERIES_WINDOWS: Counter = Counter::new("timeseries.windows");
/// Worker span roots stitched into a parent profile by
/// [`crate::trace::TraceContext::stitch`].
pub static TRACE_SPANS_STITCHED: Counter = Counter::new("trace.spans_stitched");
/// Tenants whose tuning pass completed inside a fleet run.
pub static FLEET_SHARDS_TUNED: Counter = Counter::new("fleet.shards_tuned");
/// Tenants granted more than the uniform per-shard budget share by the
/// fleet-level knapsack allocation.
pub static FLEET_BUDGET_TRANSFERS: Counter = Counter::new("fleet.budget_transfers");
/// Cross-shard seed partial orders handed from hot to cold tenants.
pub static FLEET_SEEDED_ORDERS: Counter = Counter::new("fleet.seeded_orders");
/// Tenant tuning passes that failed inside a fleet run (the fleet
/// continues; the failure is isolated to the tenant).
pub static FLEET_TENANT_FAILURES: Counter = Counter::new("fleet.tenant_failures");

static BUILTIN: &[&Counter] = &[
    &WHATIF_CALLS,
    &WHATIF_CACHE_HITS,
    &WHATIF_CACHE_MISSES,
    &PLANS_EVALUATED,
    &STATEMENTS_EXECUTED,
    &ROWS_READ,
    &PAGES_READ,
    &INDEX_SEEKS,
    &MONITOR_RECORDS,
    &CANDIDATES_GENERATED,
    &PO_MERGES,
    &VALIDATION_ROUNDS,
    &INDEXES_CREATED,
    &INDEXES_REJECTED,
    &REGRESSIONS_DETECTED,
    &TUNING_RETRIES,
    &DEGRADED_PASSES,
    &PASSES_ABORTED,
    &SELECTION_BATCHES,
    &SELECTION_BATCH_BINDING_REUSE,
    &SELECTION_BATCH_PLAN_REUSE,
    &SELECTION_LP_ITERATIONS,
    &JOURNAL_DROPPED,
    &SINK_ERRORS,
    &TIMESERIES_WINDOWS,
    &TRACE_SPANS_STITCHED,
    &FLEET_SHARDS_TUNED,
    &FLEET_BUDGET_TRANSFERS,
    &FLEET_SEEDED_ORDERS,
    &FLEET_TENANT_FAILURES,
];

/// One-line description of an instrument, for the Prometheus `# HELP`
/// exposition. Covers the fixed taxonomy and the well-known registry
/// names; anything else gets a generic line (the exposition format
/// requires *some* HELP text, not a registry).
pub fn help_for(name: &str) -> &'static str {
    match name {
        "exec.whatif_calls" => "Optimizer what-if invocations (advisory plans + DML costing).",
        "exec.whatif_cache_hits" => "What-if evaluations answered from the memo cache.",
        "exec.whatif_cache_misses" => "What-if evaluations that missed the memo cache.",
        "exec.plans_evaluated" => "Planner invocations, advisory and execution-bound.",
        "exec.statements" => "Statements run by the executor.",
        "exec.rows_read" => "Rows examined by the executor.",
        "exec.pages_read" => "Pages read by the executor.",
        "exec.seeks" => "B+-tree descents performed by the executor.",
        "exec.select_cost" => "Estimated cost of executed SELECT statements (latency proxy).",
        "monitor.records" => "Executions ingested by the workload monitor.",
        "aim.candidates_generated" => "Candidate indexes produced by structural generation.",
        "aim.partial_order_merges" => "Pairwise partial-order merges that succeeded.",
        "aim.validation_rounds" => "Clone-validation rounds executed.",
        "aim.indexes_created" => "Indexes materialized on production by tuning passes.",
        "aim.indexes_rejected" => "Candidates rejected during validation or materialization.",
        "aim.regressions_detected" => "Regressions flagged by the continuous detector.",
        "aim.retries" => "Phase retries after a transient failure.",
        "aim.degraded_passes" => "Passes that finished in a degraded mode.",
        "aim.passes_aborted" => "Passes aborted and rolled back.",
        "selection.batch.count" => "Batched what-if evaluations.",
        "selection.batch.binding_reuse" => "Batch members reusing the shared binding derivation.",
        "selection.batch.plan_reuse" => "Batch members served by an identical-projection plan.",
        "selection.lp.iterations" => "Simplex iterations performed by the LP selector.",
        "telemetry.journal_dropped" => "Events evicted from the journal ring before being read.",
        "telemetry.sink_errors" => "Event-sink write failures (events lost).",
        "timeseries.windows" => "Time-series windows closed by timeseries ticks.",
        "trace.spans_stitched" => "Worker span roots stitched into a parent profile.",
        "fleet.shards_tuned" => "Tenant tuning passes completed inside fleet runs.",
        "fleet.budget_transfers" => "Tenants granted more than the uniform budget share.",
        "fleet.seeded_orders" => "Cross-shard seed partial orders handed to cold tenants.",
        "fleet.tenant_failures" => "Tenant tuning passes that failed inside fleet runs.",
        _ => "AIM telemetry instrument (no description registered).",
    }
}

// ------------------------------------------------------------ registry

const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `buckets[i]` counts values in `(2^(i-1), 2^i]`; bucket 0 is `<= 1`.
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v <= 1.0 {
            0
        } else {
            (v.log2().ceil() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// `(inclusive upper bound, count)` for non-empty buckets.
    pub buckets: Vec<(f64, u64)>,
    /// Median estimate interpolated from the log₂ buckets.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the log₂ bucket holding the target rank. The true value lies
    /// somewhere in `(upper/2, upper]`, so the estimate is off by at most
    /// one bucket width; the observed `min`/`max` clamp the extremes.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            let before = cum as f64;
            cum += n;
            if cum as f64 >= target {
                let lower = if upper <= 1.0 { 0.0 } else { upper / 2.0 };
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                let est = lower + frac * (upper - lower);
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn fill_quantiles(mut self) -> Self {
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
        self
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Adds to an ad-hoc named counter in the registry.
pub fn counter_add(name: &'static str, n: u64) {
    if crate::is_enabled() {
        with_registry(|r| *r.counters.entry(name).or_insert(0) += n);
    }
}

/// Sets a gauge to an instantaneous value.
pub fn gauge_set(name: &'static str, v: i64) {
    if crate::is_enabled() {
        with_registry(|r| {
            r.gauges.insert(name, v);
        });
    }
}

/// Records one observation into a log₂-bucket histogram.
pub fn histogram_record(name: &'static str, v: f64) {
    if crate::is_enabled() {
        with_registry(|r| r.histograms.entry(name).or_default().record(v));
    }
}

/// Point-in-time view of every instrument.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value; builtin counters first, registry after.
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Captures all counters, gauges and histograms.
pub fn snapshot() -> Snapshot {
    let mut out = Snapshot::default();
    for c in BUILTIN {
        out.counters.push((c.name().to_string(), c.get()));
    }
    with_registry(|r| {
        for (name, v) in &r.counters {
            out.counters.push((name.to_string(), *v));
        }
        for (name, v) in &r.gauges {
            out.gauges.push((name.to_string(), *v));
        }
        for (name, h) in &r.histograms {
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| ((1u64 << i) as f64, *c))
                .collect();
            out.histograms.push((
                name.to_string(),
                HistogramSnapshot {
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets,
                    p50: 0.0,
                    p90: 0.0,
                    p99: 0.0,
                }
                .fill_quantiles(),
            ));
        }
    });
    out
}

/// Zeroes all instruments.
pub fn reset() {
    for c in BUILTIN {
        c.clear();
    }
    with_registry(|r| *r = Registry::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        WHATIF_CALLS.add(5);
        counter_add("custom.hits", 2);
        gauge_set("custom.depth", -3);
        histogram_record("custom.cost", 0.5);
        histogram_record("custom.cost", 3.0);
        histogram_record("custom.cost", 3000.0);
        crate::disable();

        let s = snapshot();
        assert_eq!(s.counter("exec.whatif_calls"), Some(5));
        assert_eq!(s.counter("custom.hits"), Some(2));
        assert_eq!(s.gauges, vec![("custom.depth".to_string(), -3)]);
        let (name, h) = &s.histograms[0];
        assert_eq!(name, "custom.cost");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 3000.0);
        // 0.5 → bucket ≤1; 3.0 → ≤4; 3000 → ≤4096.
        assert_eq!(h.buckets, vec![(1.0, 1), (4.0, 1), (4096.0, 1)]);

        crate::reset();
        assert_eq!(snapshot().counter("exec.whatif_calls"), Some(0));
        assert!(snapshot().histograms.is_empty());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        // 100 observations spread over three decades.
        for i in 1..=100 {
            histogram_record("q.cost", i as f64);
        }
        crate::disable();

        let s = snapshot();
        let (_, h) = &s.histograms[0];
        assert_eq!(h.count, 100);
        // Quantiles are monotone, within [min, max], and roughly placed:
        // the p50 of 1..=100 must land in the (32, 64] bucket.
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        assert!(h.p50 >= h.min && h.p99 <= h.max);
        assert!(h.p50 > 32.0 && h.p50 <= 64.0, "p50 = {}", h.p50);
        assert!(h.p99 > 64.0 && h.p99 <= 100.0, "p99 = {}", h.p99);
        // Degenerate histograms stay finite.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        crate::reset();
    }
}
