//! Rendering and JSON artifacts.
//!
//! [`render_profile`] pretty-prints a span tree with per-phase wall time,
//! call counts and percent-of-parent; [`render_counters`] tabulates a
//! metrics snapshot; [`write_artifact`] dumps the full telemetry state
//! (counters, gauges, histograms, profile, journal) as one JSON document —
//! the machine-readable artifact the bench binaries drop into `results/`.
//!
//! JSON is emitted by hand (this crate takes no dependencies); the format
//! is plain nested objects, stable enough to diff across runs.

use crate::journal::Event;
use crate::metrics::Snapshot;
use crate::span::ProfileNode;
use std::fmt::Write as _;
use std::path::Path;

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One event as a JSON object (also the JSON-lines sink format).
pub fn event_json(e: &Event) -> String {
    format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"target\":\"{}\",\"detail\":\"{}\"}}",
        e.seq,
        e.kind.as_str(),
        json_escape(&e.target),
        json_escape(&e.detail)
    )
}

pub(crate) fn profile_node_json(node: &ProfileNode, out: &mut String) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"count\":{},\"total_ms\":{:.3},\"children\":[",
        json_escape(&node.name),
        node.count,
        node.total.as_secs_f64() * 1e3
    );
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        profile_node_json(c, out);
    }
    out.push_str("]}");
}

fn snapshot_json(s: &Snapshot, out: &mut String) {
    out.push_str("\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{:.3},\"min\":{:.3},\"max\":{:.3},\
             \"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"buckets\":[",
            json_escape(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p90,
            h.p99
        );
        for (j, (ub, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{ub},{c}]");
        }
        out.push_str("]}");
    }
    out.push('}');
}

/// The full telemetry state as one JSON document.
pub fn artifact_json(label: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"label\":\"{}\",", json_escape(label));
    snapshot_json(&crate::metrics::snapshot(), &mut out);
    out.push_str(",\"profile\":[");
    let profile = crate::span::profile_snapshot();
    for (i, c) in profile.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        profile_node_json(c, &mut out);
    }
    out.push_str("],\"events\":[");
    for (i, e) in crate::journal::events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(e));
    }
    let _ = write!(out, "],\"events_dropped\":{},", crate::journal::dropped());
    out.push_str("\"timeseries\":");
    out.push_str(&crate::timeseries::to_json(usize::MAX));
    out.push('}');
    out
}

/// Writes [`artifact_json`] to `path`, creating parent directories.
pub fn write_artifact(path: impl AsRef<Path>, label: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, artifact_json(label))
}

fn render_node(node: &ProfileNode, parent_total: f64, prefix: &str, last: bool, out: &mut String) {
    let ms = node.total.as_secs_f64() * 1e3;
    let pct = if parent_total > 0.0 {
        ms / parent_total * 100.0
    } else {
        100.0
    };
    let branch = if prefix.is_empty() {
        String::new()
    } else {
        format!("{prefix}{}", if last { "└─ " } else { "├─ " })
    };
    let label = format!("{branch}{}", node.name);
    let _ = writeln!(out, "{label:<44} {ms:>10.3} ms  ×{:<6} {pct:>5.1}%", node.count);
    let child_prefix = if prefix.is_empty() {
        "  ".to_string()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    for (i, c) in node.children.iter().enumerate() {
        render_node(c, ms, &child_prefix, i + 1 == node.children.len(), out);
    }
    // Wall time not covered by child spans, when material.
    let covered: f64 = node.children.iter().map(|c| c.total.as_secs_f64() * 1e3).sum();
    if !node.children.is_empty() && ms - covered > ms * 0.01 {
        let _ = writeln!(
            out,
            "{child_prefix}(untracked){:>width$.3} ms        {:>5.1}%",
            ms - covered,
            (ms - covered) / ms * 100.0,
            width = 54usize.saturating_sub(child_prefix.len() + 11)
        );
    }
}

/// Pretty-prints the span tree of a profile root (as returned by
/// [`crate::take_profile`]).
pub fn render_profile(profile: &ProfileNode) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>13}  {:<7} {:>6}",
        "phase", "wall time", "calls", "of parent"
    );
    for (i, c) in profile.children.iter().enumerate() {
        render_node(c, 0.0, "", i + 1 == profile.children.len(), &mut out);
    }
    out
}

/// Tabulates the non-zero instruments of a snapshot. Telemetry health
/// meters are rendered even at zero: a report must show that the journal
/// lost nothing and how much windowing/stitching happened, not silently
/// omit them.
pub fn render_counters(s: &Snapshot) -> String {
    const ALWAYS: &[&str] = &[
        "telemetry.journal_dropped",
        "telemetry.series_dropped",
        "timeseries.windows",
        "trace.spans_stitched",
    ];
    let mut out = String::new();
    for (name, v) in &s.counters {
        if *v > 0 || ALWAYS.contains(&name.as_str()) {
            let _ = writeln!(out, "{name:<36} {v:>14}");
        }
    }
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "{name:<36} {v:>14}  (gauge)");
    }
    for (name, h) in &s.histograms {
        let _ = writeln!(
            out,
            "{name:<36} {:>14}  (histogram: mean {:.1}, p50 {:.1}, p90 {:.1}, \
             p99 {:.1}, min {:.1}, max {:.1})",
            h.count,
            if h.count > 0 { h.sum / h.count as f64 } else { 0.0 },
            h.p50,
            h.p90,
            h.p99,
            h.min,
            h.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn artifact_is_valid_enough_json() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::WHATIF_CALLS.add(2);
        crate::metrics::histogram_record("h", 10.0);
        {
            let _s = crate::span("root");
            let _c = crate::span("child");
        }
        crate::journal::event(crate::EventKind::TuningPass, "pass", "ok");
        crate::disable();
        let json = artifact_json("test");
        // Structural sanity: balanced braces/brackets, expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in ["\"label\":\"test\"", "\"counters\"", "\"profile\"", "\"events\"", "\"root\"", "\"tuning_pass\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        crate::reset();
    }

    #[test]
    fn render_profile_shows_tree_and_percentages() {
        let tree = ProfileNode {
            name: String::new(),
            count: 0,
            total: Duration::ZERO,
            children: vec![ProfileNode {
                name: "tune".into(),
                count: 1,
                total: Duration::from_millis(100),
                children: vec![
                    ProfileNode {
                        name: "ranking".into(),
                        count: 40,
                        total: Duration::from_millis(60),
                        children: Vec::new(),
                    },
                    ProfileNode {
                        name: "validation".into(),
                        count: 1,
                        total: Duration::from_millis(39),
                        children: Vec::new(),
                    },
                ],
            }],
        };
        let text = render_profile(&tree);
        assert!(text.contains("tune"));
        assert!(text.contains("├─ ranking"));
        assert!(text.contains("└─ validation"));
        assert!(text.contains("×40"));
        assert!(text.contains("60.0%"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
