//! Live introspection endpoint: a std-only HTTP server over the telemetry
//! state, so a long-running continuous-tuning process can be watched from
//! the outside while it runs.
//!
//! Security posture: **off by default** — nothing listens unless the host
//! process calls [`IntrospectionServer::start`] — and the listener binds
//! `127.0.0.1` only, so the endpoint is never reachable off-box. It serves
//! read-only GETs, holds no state of its own, and supports exactly six
//! routes:
//!
//! * `/metrics` — counters, gauges and histograms in Prometheus text
//!   exposition format (histograms as summaries with `p50/p90/p99`
//!   quantile lines),
//! * `/journal` — the event ring buffer as a JSON array,
//! * `/profile` — the published span tree (see
//!   [`crate::publish_profile`]) as JSON,
//! * `/timeseries` — the windowed metric ring from
//!   [`crate::timeseries`] as JSON (`?n=K` limits to the last K windows),
//! * `/trace` — the Chrome trace-event buffer from [`crate::trace`],
//! * `/ledger` — whatever JSON document the host registered via
//!   [`set_ledger_source`] (404 until a session registers one).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type LedgerSource = Box<dyn Fn() -> String + Send + Sync>;

static LEDGER_SOURCE: Mutex<Option<LedgerSource>> = Mutex::new(None);

/// Registers the JSON provider behind `/ledger` (typically a closure over
/// a tuning session's decision ledger). Replaces any previous source.
pub fn set_ledger_source(source: impl Fn() -> String + Send + Sync + 'static) {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(source));
}

/// Unregisters the `/ledger` provider; the route 404s again.
pub fn clear_ledger_source() {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn ledger_json() -> Option<String> {
    LEDGER_SOURCE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|f| f())
}

/// A running introspection endpoint. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the listener thread.
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Binds `127.0.0.1:port` (use port 0 for an ephemeral port) and
    /// starts serving on a background thread.
    pub fn start(port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("aim-introspection".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_thread.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection, served inline: the
                        // endpoint is a debugging aid, not a web server.
                        let _ = serve_one(stream);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    // Read until the end of the request head (or the timeout); only the
    // request line matters — GETs carry no body we care about.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("");
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_path, ""),
    };

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "read-only endpoint: use GET\n".to_string(),
        )
    } else {
        match path {
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "aim introspection endpoint\n\
                 routes: /metrics /journal /profile /timeseries /trace /ledger\n"
                    .to_string(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&crate::metrics::snapshot()),
            ),
            "/journal" => ("200 OK", "application/json", journal_body()),
            "/profile" => ("200 OK", "application/json", profile_body()),
            "/timeseries" => {
                let n = query_param(query, "n").unwrap_or(usize::MAX);
                ("200 OK", "application/json", crate::timeseries::to_json(n))
            }
            "/trace" => (
                "200 OK",
                "application/json",
                crate::trace::chrome_trace_json(),
            ),
            "/ledger" => match ledger_json() {
                Some(json) => ("200 OK", "application/json", json),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no ledger registered (see aim_telemetry::set_ledger_source)\n".to_string(),
                ),
            },
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown route (try /metrics, /journal, /profile, /timeseries, \
                 /trace, /ledger)\n"
                    .to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// First value of `key` in a raw query string (`a=1&b=2`), parsed as usize.
fn query_param(query: &str, key: &str) -> Option<usize> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.parse().ok()).flatten()
    })
}

fn journal_body() -> String {
    let mut out = String::from("{\"events\":[");
    for (i, e) in crate::journal::events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::report::event_json(e));
    }
    out.push_str(&format!(
        "],\"events_dropped\":{}}}",
        crate::journal::dropped()
    ));
    out
}

fn profile_body() -> String {
    let profile = crate::span::published_profile();
    let mut out = String::from("{\"profile\":[");
    for (i, c) in profile.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::report::profile_node_json(c, &mut out);
    }
    out.push_str("]}");
    out
}

/// Sanitizes an instrument name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `aim_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("aim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 the Prometheus way (no exponent games needed for our
/// magnitudes; NaN/inf never occur in snapshots).
fn prom_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Renders a metrics snapshot in Prometheus text exposition format
/// (version 0.0.4). Every family gets a `# HELP` line (from
/// [`crate::metrics::help_for`]) followed by its `# TYPE`; histograms are
/// exposed as summaries with the `p50/p90/p99` quantile estimates from
/// the log₂ buckets.
pub fn render_prometheus(s: &crate::metrics::Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = prom_name(name);
        let help = crate::metrics::help_for(name);
        out.push_str(&format!(
            "# HELP {n} {help}\n# TYPE {n} counter\n{n} {v}\n"
        ));
    }
    for (name, v) in &s.gauges {
        let n = prom_name(name);
        let help = crate::metrics::help_for(name);
        out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &s.histograms {
        let n = prom_name(name);
        let help = crate::metrics::help_for(name);
        out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", prom_f64(v)));
        }
        out.push_str(&format!("{n}_sum {}\n", prom_f64(h.sum)));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::WHATIF_CALLS.add(3);
        crate::metrics::gauge_set("db.index_bytes", 512);
        for v in [1.0, 8.0, 100.0] {
            crate::metrics::histogram_record("exec.whatif_cost", v);
        }
        crate::journal::event(crate::EventKind::IndexAccepted, "aim_t_a", "why");
        crate::trace::start_recording();
        {
            let _s = crate::span("pass");
        }
        crate::trace::stop_recording();
        crate::publish_profile();
        crate::timeseries::tick("w1");
        crate::metrics::ROWS_READ.add(5);
        crate::timeseries::tick("w2");
        crate::disable();

        let server = IntrospectionServer::start(0).expect("bind loopback");
        let addr = server.addr();
        assert!(addr.ip().is_loopback(), "must only bind loopback");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("# TYPE aim_exec_whatif_calls counter"));
        assert!(body.contains("aim_exec_whatif_calls 3"));
        assert!(body.contains("# TYPE aim_db_index_bytes gauge"));
        assert!(body.contains("# TYPE aim_exec_whatif_cost summary"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.5\"}"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.99\"}"));
        assert!(body.contains("aim_exec_whatif_cost_count 3"));

        let (head, body) = get(addr, "/journal");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("journal is JSON");
        assert_eq!(
            parsed
                .path("events")
                .and_then(crate::jsonv::Json::as_arr)
                .map(<[crate::jsonv::Json]>::len),
            Some(1)
        );

        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        assert!(body.contains("\"pass\""));

        let (head, body) = get(addr, "/timeseries");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("timeseries is JSON");
        assert_eq!(parsed.get("windows").unwrap().as_arr().unwrap().len(), 2);
        // ?n= limits to the most recent windows.
        let (_, body) = get(addr, "/timeseries?n=1");
        let parsed = crate::jsonv::parse(&body).expect("limited timeseries is JSON");
        let windows = parsed.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].get("label").unwrap().as_str(), Some("w2"));
        assert_eq!(
            windows[0]
                .path("counters/exec.rows_read/delta")
                .and_then(crate::jsonv::Json::as_f64),
            Some(5.0)
        );

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("trace is JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1, "the recorded span close shows up");
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("pass"));

        let (head, _) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 404"), "no ledger yet: {head}");
        set_ledger_source(|| "{\"passes\":0}".to_string());
        let (head, body) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        clear_ledger_source();

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        // The port is released: a fresh bind to the same port succeeds.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "listener thread still holds the port");
        crate::reset();
    }

    /// Structural validation of the exposition format: every sample line
    /// must be preceded by a `# HELP` and `# TYPE` for its family, names
    /// must stay in the Prometheus alphabet, and values must be numeric.
    #[test]
    fn prometheus_exposition_is_well_formed() {
        use std::collections::{BTreeMap, BTreeSet};

        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::STATEMENTS_EXECUTED.add(12);
        crate::metrics::counter_add("adhoc.with-dash", 1);
        crate::metrics::gauge_set("db.index_bytes", 99);
        for v in [2.0, 20.0, 200.0] {
            crate::metrics::histogram_record("exec.select_cost", v);
        }
        crate::disable();

        let text = render_prometheus(&crate::metrics::snapshot());
        let mut helped: BTreeSet<String> = BTreeSet::new();
        let mut typed: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP carries text");
                assert!(!help.trim().is_empty(), "empty HELP for {name}");
                helped.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest.split_once(' ').expect("TYPE carries a type");
                assert!(
                    ["counter", "gauge", "summary"].contains(&ty),
                    "unknown type {ty}"
                );
                assert!(helped.contains(name), "HELP must precede TYPE for {name}");
                typed.insert(name.to_string(), ty.to_string());
            } else {
                let mut parts = line.split(' ');
                let name_with_labels = parts.next().expect("sample name");
                let value = parts.next().expect("sample value");
                assert!(parts.next().is_none(), "trailing tokens in {line:?}");
                value.parse::<f64>().unwrap_or_else(|_| {
                    panic!("non-numeric sample value in {line:?}")
                });
                let name = name_with_labels.split('{').next().unwrap();
                assert!(name.starts_with("aim_"), "unprefixed name {name}");
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "name {name} outside the Prometheus alphabet"
                );
                // Summary _sum/_count samples belong to their base family.
                let base = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|b| typed.get(*b).map(String::as_str) == Some("summary"))
                    .unwrap_or(name);
                assert!(typed.contains_key(base), "TYPE must precede sample {name}");
                assert!(helped.contains(base), "HELP must precede sample {name}");
            }
        }
        // The new counters are part of the fixed taxonomy and always appear.
        for family in [
            "aim_timeseries_windows",
            "aim_trace_spans_stitched",
            "aim_telemetry_journal_dropped",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
        }
        crate::reset();
    }
}
