//! Live introspection endpoint: a std-only HTTP server over the telemetry
//! state, so a long-running continuous-tuning process can be watched from
//! the outside while it runs.
//!
//! Security posture: **off by default** — nothing listens unless the host
//! process calls [`IntrospectionServer::start`] — and the listener binds
//! `127.0.0.1` only, so the endpoint is never reachable off-box. It serves
//! read-only GETs, holds no state of its own, and supports exactly four
//! routes:
//!
//! * `/metrics` — counters, gauges and histograms in Prometheus text
//!   exposition format (histograms as summaries with `p50/p90/p99`
//!   quantile lines),
//! * `/journal` — the event ring buffer as a JSON array,
//! * `/profile` — the published span tree (see
//!   [`crate::publish_profile`]) as JSON,
//! * `/ledger` — whatever JSON document the host registered via
//!   [`set_ledger_source`] (404 until a session registers one).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type LedgerSource = Box<dyn Fn() -> String + Send + Sync>;

static LEDGER_SOURCE: Mutex<Option<LedgerSource>> = Mutex::new(None);

/// Registers the JSON provider behind `/ledger` (typically a closure over
/// a tuning session's decision ledger). Replaces any previous source.
pub fn set_ledger_source(source: impl Fn() -> String + Send + Sync + 'static) {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(source));
}

/// Unregisters the `/ledger` provider; the route 404s again.
pub fn clear_ledger_source() {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn ledger_json() -> Option<String> {
    LEDGER_SOURCE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|f| f())
}

/// A running introspection endpoint. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the listener thread.
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Binds `127.0.0.1:port` (use port 0 for an ephemeral port) and
    /// starts serving on a background thread.
    pub fn start(port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("aim-introspection".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_thread.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection, served inline: the
                        // endpoint is a debugging aid, not a web server.
                        let _ = serve_one(stream);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    // Read until the end of the request head (or the timeout); only the
    // request line matters — GETs carry no body we care about.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "read-only endpoint: use GET\n".to_string(),
        )
    } else {
        match path {
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "aim introspection endpoint\n\
                 routes: /metrics /journal /profile /ledger\n"
                    .to_string(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&crate::metrics::snapshot()),
            ),
            "/journal" => ("200 OK", "application/json", journal_body()),
            "/profile" => ("200 OK", "application/json", profile_body()),
            "/ledger" => match ledger_json() {
                Some(json) => ("200 OK", "application/json", json),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no ledger registered (see aim_telemetry::set_ledger_source)\n".to_string(),
                ),
            },
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown route (try /metrics, /journal, /profile, /ledger)\n".to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn journal_body() -> String {
    let mut out = String::from("{\"events\":[");
    for (i, e) in crate::journal::events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::report::event_json(e));
    }
    out.push_str(&format!(
        "],\"events_dropped\":{}}}",
        crate::journal::dropped()
    ));
    out
}

fn profile_body() -> String {
    let profile = crate::span::published_profile();
    let mut out = String::from("{\"profile\":[");
    for (i, c) in profile.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::report::profile_node_json(c, &mut out);
    }
    out.push_str("]}");
    out
}

/// Sanitizes an instrument name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `aim_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("aim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 the Prometheus way (no exponent games needed for our
/// magnitudes; NaN/inf never occur in snapshots).
fn prom_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Renders a metrics snapshot in Prometheus text exposition format
/// (version 0.0.4). Histograms are exposed as summaries with the
/// `p50/p90/p99` quantile estimates from the log₂ buckets.
pub fn render_prometheus(s: &crate::metrics::Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &s.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &s.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", prom_f64(v)));
        }
        out.push_str(&format!("{n}_sum {}\n", prom_f64(h.sum)));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::WHATIF_CALLS.add(3);
        crate::metrics::gauge_set("db.index_bytes", 512);
        for v in [1.0, 8.0, 100.0] {
            crate::metrics::histogram_record("exec.whatif_cost", v);
        }
        crate::journal::event(crate::EventKind::IndexAccepted, "aim_t_a", "why");
        {
            let _s = crate::span("pass");
        }
        crate::publish_profile();
        crate::disable();

        let server = IntrospectionServer::start(0).expect("bind loopback");
        let addr = server.addr();
        assert!(addr.ip().is_loopback(), "must only bind loopback");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("# TYPE aim_exec_whatif_calls counter"));
        assert!(body.contains("aim_exec_whatif_calls 3"));
        assert!(body.contains("# TYPE aim_db_index_bytes gauge"));
        assert!(body.contains("# TYPE aim_exec_whatif_cost summary"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.5\"}"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.99\"}"));
        assert!(body.contains("aim_exec_whatif_cost_count 3"));

        let (head, body) = get(addr, "/journal");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("journal is JSON");
        assert_eq!(
            parsed
                .path("events")
                .and_then(crate::jsonv::Json::as_arr)
                .map(<[crate::jsonv::Json]>::len),
            Some(1)
        );

        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        assert!(body.contains("\"pass\""));

        let (head, _) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 404"), "no ledger yet: {head}");
        set_ledger_source(|| "{\"passes\":0}".to_string());
        let (head, body) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        clear_ledger_source();

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        // The port is released: a fresh bind to the same port succeeds.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "listener thread still holds the port");
        crate::reset();
    }
}
