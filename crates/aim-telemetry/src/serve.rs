//! Live introspection endpoint: a std-only HTTP server over the telemetry
//! state, so a long-running continuous-tuning process can be watched from
//! the outside while it runs.
//!
//! Security posture: **off by default** — nothing listens unless the host
//! process calls [`IntrospectionServer::start`] — and the listener binds
//! `127.0.0.1` only, so the endpoint is never reachable off-box. It serves
//! read-only GETs, holds no state of its own, and supports exactly six
//! routes:
//!
//! * `/metrics` — counters, gauges and histograms in Prometheus text
//!   exposition format (histograms as summaries with `p50/p90/p99`
//!   quantile lines),
//! * `/journal` — the event ring buffer as a JSON array,
//! * `/profile` — the published span tree (see
//!   [`crate::publish_profile`]) as JSON,
//! * `/timeseries` — the windowed metric ring from
//!   [`crate::timeseries`] as JSON (`?n=K` limits to the last K windows),
//! * `/trace` — the Chrome trace-event buffer from [`crate::trace`],
//! * `/ledger` — whatever JSON document the host registered via
//!   [`set_ledger_source`] (404 until a session registers one).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type LedgerSource = Box<dyn Fn() -> String + Send + Sync>;

static LEDGER_SOURCE: Mutex<Option<LedgerSource>> = Mutex::new(None);

/// Registers the JSON provider behind `/ledger` (typically a closure over
/// a tuning session's decision ledger). Replaces any previous source.
pub fn set_ledger_source(source: impl Fn() -> String + Send + Sync + 'static) {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(source));
}

/// Unregisters the `/ledger` provider; the route 404s again.
pub fn clear_ledger_source() {
    *LEDGER_SOURCE.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn ledger_json() -> Option<String> {
    LEDGER_SOURCE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|f| f())
}

/// A running introspection endpoint. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the listener thread.
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Binds `127.0.0.1:port` (use port 0 for an ephemeral port) and
    /// starts serving on a background thread.
    pub fn start(port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("aim-introspection".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_thread.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection, served inline: the
                        // endpoint is a debugging aid, not a web server.
                        let _ = serve_one(stream);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    // Read until the end of the request head (or the timeout); only the
    // request line matters — GETs carry no body we care about.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("");
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (raw_path, ""),
    };

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "read-only endpoint: use GET\n".to_string(),
        )
    } else {
        match path {
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "aim introspection endpoint\n\
                 routes: /metrics /journal /profile /timeseries /trace /ledger \
                 /fleet /alerts\n"
                    .to_string(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&crate::metrics::snapshot()),
            ),
            "/journal" => ("200 OK", "application/json", journal_body()),
            "/profile" => ("200 OK", "application/json", profile_body()),
            "/timeseries" => {
                let n = query_param(query, "n").unwrap_or(usize::MAX);
                ("200 OK", "application/json", crate::timeseries::to_json(n))
            }
            "/trace" => (
                "200 OK",
                "application/json",
                crate::trace::chrome_trace_json(),
            ),
            "/ledger" => match ledger_json() {
                Some(json) => ("200 OK", "application/json", json),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no ledger registered (see aim_telemetry::set_ledger_source)\n".to_string(),
                ),
            },
            "/fleet" => (
                "200 OK",
                "application/json",
                fleet_json(
                    query_param_str(query, "sort").unwrap_or("tenant"),
                    query_param(query, "top").unwrap_or(usize::MAX),
                ),
            ),
            "/alerts" => ("200 OK", "application/json", crate::slo::alerts_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown route (try /metrics, /journal, /profile, /timeseries, \
                 /trace, /ledger, /fleet, /alerts)\n"
                    .to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// First value of `key` in a raw query string (`a=1&b=2`), parsed as usize.
fn query_param(query: &str, key: &str) -> Option<usize> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.parse().ok()).flatten()
    })
}

/// First raw value of `key` in a query string.
fn query_param_str<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// One tenant's rollup row for the `/fleet` endpoint, accumulated from
/// the tenant-labeled series in a metrics snapshot.
#[derive(Debug, Clone, Default)]
struct FleetRow {
    shards_tuned: u64,
    budget_granted: i64,
    budget_used: i64,
    duration_ms: f64,
    cost_p50: f64,
    cost_p99: f64,
    cost_count: u64,
    sentinel_state: i64,
}

/// Per-tenant rollup document behind `/fleet`: for every tenant seen in
/// any labeled series, the shards tuned, budget bytes granted vs. used,
/// tuning wall clock, select-cost p50/p99 and sentinel state. `sort`
/// orders rows (`tenant`, `shards`, `granted`, `used`, `duration`, `p99`;
/// non-tenant keys sort descending) and `top` truncates.
fn fleet_json(sort: &str, top: usize) -> String {
    use std::collections::BTreeMap;

    let snap = crate::metrics::snapshot();
    let mut rows: BTreeMap<String, FleetRow> = BTreeMap::new();
    for (name, v) in &snap.counters {
        let (base, labels) = crate::metrics::parse_series(name);
        let Some((_, tenant)) = labels.iter().find(|(k, _)| k == "tenant") else {
            continue;
        };
        if base == "fleet.shards_tuned" {
            rows.entry(tenant.clone()).or_default().shards_tuned += v;
        }
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = crate::metrics::parse_series(name);
        let Some((_, tenant)) = labels.iter().find(|(k, _)| k == "tenant") else {
            continue;
        };
        let row = rows.entry(tenant.clone()).or_default();
        match base.as_str() {
            "fleet.budget_granted_bytes" => row.budget_granted = *v,
            "fleet.budget_used_bytes" => row.budget_used = *v,
            "sentinel.state" => row.sentinel_state = *v,
            _ => {}
        }
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = crate::metrics::parse_series(name);
        let Some((_, tenant)) = labels.iter().find(|(k, _)| k == "tenant") else {
            continue;
        };
        let row = rows.entry(tenant.clone()).or_default();
        match base.as_str() {
            "fleet.tenant_duration" => row.duration_ms += h.sum,
            // Prefer the pure per-tenant live series; fall back to a
            // phase-scoped one (tuning replay) when no live traffic exists.
            "exec.select_cost" => {
                let pure = labels.len() == 1;
                if pure || row.cost_count == 0 {
                    row.cost_p50 = h.p50;
                    row.cost_p99 = h.p99;
                    row.cost_count = h.count;
                }
            }
            _ => {}
        }
    }

    let mut ordered: Vec<(String, FleetRow)> = rows.into_iter().collect();
    match sort {
        "shards" => ordered.sort_by_key(|r| std::cmp::Reverse(r.1.shards_tuned)),
        "granted" => ordered.sort_by_key(|r| std::cmp::Reverse(r.1.budget_granted)),
        "used" => ordered.sort_by_key(|r| std::cmp::Reverse(r.1.budget_used)),
        "duration" => ordered.sort_by(|a, b| {
            b.1.duration_ms
                .partial_cmp(&a.1.duration_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        }),
        "p99" => ordered.sort_by(|a, b| {
            b.1.cost_p99
                .partial_cmp(&a.1.cost_p99)
                .unwrap_or(std::cmp::Ordering::Equal)
        }),
        _ => {} // BTreeMap order: tenant id ascending.
    }
    ordered.truncate(top);

    let mut out = String::from("{\"tenants\":[");
    for (i, (tenant, row)) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tenant\":\"{}\",\"shards_tuned\":{},\"budget_granted_bytes\":{},\
             \"budget_used_bytes\":{},\"duration_ms\":{:.3},\"cost_p50\":{:.3},\
             \"cost_p99\":{:.3},\"sentinel_state\":{}}}",
            crate::report::json_escape(tenant),
            row.shards_tuned,
            row.budget_granted,
            row.budget_used,
            row.duration_ms,
            row.cost_p50,
            row.cost_p99,
            row.sentinel_state,
        ));
    }
    out.push_str(&format!(
        "],\"series_active\":{},\"series_dropped\":{}}}",
        crate::metrics::series_count(),
        crate::metrics::SERIES_DROPPED.get(),
    ));
    out
}

fn journal_body() -> String {
    let mut out = String::from("{\"events\":[");
    for (i, e) in crate::journal::events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::report::event_json(e));
    }
    out.push_str(&format!(
        "],\"events_dropped\":{}}}",
        crate::journal::dropped()
    ));
    out
}

fn profile_body() -> String {
    let profile = crate::span::published_profile();
    let mut out = String::from("{\"profile\":[");
    for (i, c) in profile.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::report::profile_node_json(c, &mut out);
    }
    out.push_str("]}");
    out
}

/// Sanitizes an instrument name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `aim_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("aim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Sanitizes a label key into the Prometheus label alphabet
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn prom_label_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a `# HELP` line per exposition format 0.0.4: `\` → `\\` and
/// newline → `\n` (quotes are *not* escaped in HELP text).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a label blob (`{k="v",…}`) with keys in stable (sorted) order
/// and values escaped per 0.0.4; `extra` is appended last (used for the
/// `quantile` label on summary samples). Empty label sets render as
/// nothing.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                prom_label_key(k),
                crate::metrics::escape_label_value(v)
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats an f64 the Prometheus way (no exponent games needed for our
/// magnitudes; NaN/inf never occur in snapshots).
fn prom_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// One sample within a Prometheus family: its label pairs and value.
type LabeledSample<T> = (Vec<(String, String)>, T);

/// Groups (possibly labeled) snapshot entries into Prometheus families:
/// all samples of one family rendered together under a single
/// `# HELP`/`# TYPE` pair, flat series first, labeled series after in
/// snapshot (sorted) order.
fn family_groups<T: Clone>(entries: &[(String, T)]) -> Vec<(String, Vec<LabeledSample<T>>)> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::BTreeMap<String, Vec<LabeledSample<T>>> =
        std::collections::BTreeMap::new();
    for (name, v) in entries {
        let (base, labels) = crate::metrics::parse_series(name);
        if !groups.contains_key(&base) {
            order.push(base.clone());
        }
        groups.entry(base).or_default().push((labels, v.clone()));
    }
    order
        .into_iter()
        .map(|base| {
            let samples = groups.remove(&base).unwrap_or_default();
            (base, samples)
        })
        .collect()
}

/// Renders a metrics snapshot in Prometheus text exposition format
/// (version 0.0.4). Every family gets a `# HELP` line (from
/// [`crate::metrics::help_for`], escaped) followed by its `# TYPE`; all
/// samples of a family — the flat series and its labeled variants — are
/// grouped under one header with stable label ordering and escaped label
/// values. Histograms are exposed as summaries with the `p50/p90/p99`
/// quantile estimates from the log₂ buckets.
pub fn render_prometheus(s: &crate::metrics::Snapshot) -> String {
    let mut out = String::new();
    for (base, samples) in family_groups(&s.counters) {
        let n = prom_name(&base);
        let help = escape_help(crate::metrics::help_for(&base));
        out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} counter\n"));
        for (labels, v) in samples {
            out.push_str(&format!("{n}{} {v}\n", prom_labels(&labels, None)));
        }
    }
    for (base, samples) in family_groups(&s.gauges) {
        let n = prom_name(&base);
        let help = escape_help(crate::metrics::help_for(&base));
        out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} gauge\n"));
        for (labels, v) in samples {
            out.push_str(&format!("{n}{} {v}\n", prom_labels(&labels, None)));
        }
    }
    for (base, samples) in family_groups(&s.histograms) {
        let n = prom_name(&base);
        let help = escape_help(crate::metrics::help_for(&base));
        out.push_str(&format!("# HELP {n} {help}\n# TYPE {n} summary\n"));
        for (labels, h) in samples {
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                out.push_str(&format!(
                    "{n}{} {}\n",
                    prom_labels(&labels, Some(("quantile", q))),
                    prom_f64(v)
                ));
            }
            out.push_str(&format!(
                "{n}_sum{} {}\n",
                prom_labels(&labels, None),
                prom_f64(h.sum)
            ));
            out.push_str(&format!(
                "{n}_count{} {}\n",
                prom_labels(&labels, None),
                h.count
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::WHATIF_CALLS.add(3);
        crate::metrics::gauge_set("db.index_bytes", 512);
        for v in [1.0, 8.0, 100.0] {
            crate::metrics::histogram_record("exec.whatif_cost", v);
        }
        crate::journal::event(crate::EventKind::IndexAccepted, "aim_t_a", "why");
        crate::trace::start_recording();
        {
            let _s = crate::span("pass");
        }
        crate::trace::stop_recording();
        crate::publish_profile();
        crate::timeseries::tick("w1");
        crate::metrics::ROWS_READ.add(5);
        crate::timeseries::tick("w2");
        crate::disable();

        let server = IntrospectionServer::start(0).expect("bind loopback");
        let addr = server.addr();
        assert!(addr.ip().is_loopback(), "must only bind loopback");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("# TYPE aim_exec_whatif_calls counter"));
        assert!(body.contains("aim_exec_whatif_calls 3"));
        assert!(body.contains("# TYPE aim_db_index_bytes gauge"));
        assert!(body.contains("# TYPE aim_exec_whatif_cost summary"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.5\"}"));
        assert!(body.contains("aim_exec_whatif_cost{quantile=\"0.99\"}"));
        assert!(body.contains("aim_exec_whatif_cost_count 3"));

        let (head, body) = get(addr, "/journal");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("journal is JSON");
        assert_eq!(
            parsed
                .path("events")
                .and_then(crate::jsonv::Json::as_arr)
                .map(<[crate::jsonv::Json]>::len),
            Some(1)
        );

        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        assert!(body.contains("\"pass\""));

        let (head, body) = get(addr, "/timeseries");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("timeseries is JSON");
        assert_eq!(parsed.get("windows").unwrap().as_arr().unwrap().len(), 2);
        // ?n= limits to the most recent windows.
        let (_, body) = get(addr, "/timeseries?n=1");
        let parsed = crate::jsonv::parse(&body).expect("limited timeseries is JSON");
        let windows = parsed.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].get("label").unwrap().as_str(), Some("w2"));
        assert_eq!(
            windows[0]
                .path("counters/exec.rows_read/delta")
                .and_then(crate::jsonv::Json::as_f64),
            Some(5.0)
        );

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::jsonv::parse(&body).expect("trace is JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1, "the recorded span close shows up");
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("pass"));

        let (head, _) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 404"), "no ledger yet: {head}");
        set_ledger_source(|| "{\"passes\":0}".to_string());
        let (head, body) = get(addr, "/ledger");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(crate::jsonv::parse(&body).is_ok());
        clear_ledger_source();

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
        // The port is released: a fresh bind to the same port succeeds.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "listener thread still holds the port");
        crate::reset();
    }

    /// Structural validation of the exposition format: every sample line
    /// must be preceded by a `# HELP` and `# TYPE` for its family, names
    /// must stay in the Prometheus alphabet, and values must be numeric.
    #[test]
    fn prometheus_exposition_is_well_formed() {
        use std::collections::{BTreeMap, BTreeSet};

        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        crate::metrics::STATEMENTS_EXECUTED.add(12);
        crate::metrics::counter_add("adhoc.with-dash", 1);
        crate::metrics::gauge_set("db.index_bytes", 99);
        for v in [2.0, 20.0, 200.0] {
            crate::metrics::histogram_record("exec.select_cost", v);
        }
        // Labeled twins of the same families must group under one header.
        {
            let _t = crate::metrics::scope("tenant with space");
            crate::metrics::STATEMENTS_EXECUTED.add(2);
            crate::metrics::histogram_record("exec.select_cost", 42.0);
        }
        crate::disable();

        let text = render_prometheus(&crate::metrics::snapshot());
        let mut helped: BTreeSet<String> = BTreeSet::new();
        let mut typed: BTreeMap<String, String> = BTreeMap::new();
        let mut last_family = String::new();
        let mut closed_families: BTreeSet<String> = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP carries text");
                assert!(!help.trim().is_empty(), "empty HELP for {name}");
                helped.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest.split_once(' ').expect("TYPE carries a type");
                assert!(
                    ["counter", "gauge", "summary"].contains(&ty),
                    "unknown type {ty}"
                );
                assert!(helped.contains(name), "HELP must precede TYPE for {name}");
                assert!(
                    !closed_families.contains(name),
                    "family {name} split across multiple headers"
                );
                typed.insert(name.to_string(), ty.to_string());
            } else {
                // Sample lines are `name{labels} value`; label values may
                // contain spaces, the value never does.
                let (name_with_labels, value) =
                    line.rsplit_once(' ').expect("sample carries a value");
                value.parse::<f64>().unwrap_or_else(|_| {
                    panic!("non-numeric sample value in {line:?}")
                });
                let name = name_with_labels.split('{').next().unwrap();
                let family = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|b| typed.get(*b).map(String::as_str) == Some("summary"))
                    .unwrap_or(name)
                    .to_string();
                if family != last_family && !last_family.is_empty() {
                    closed_families.insert(last_family.clone());
                }
                last_family = family;
                assert!(name.starts_with("aim_"), "unprefixed name {name}");
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "name {name} outside the Prometheus alphabet"
                );
                assert!(
                    typed.contains_key(&last_family),
                    "TYPE must precede sample {name}"
                );
                assert!(
                    helped.contains(&last_family),
                    "HELP must precede sample {name}"
                );
            }
        }
        // The labeled twins landed inside their families with stable
        // label order and escaped values.
        assert!(text.contains("aim_exec_statements{tenant=\"tenant with space\"} 2"));
        assert!(
            text.contains("aim_exec_select_cost{tenant=\"tenant with space\",quantile=\"0.5\"}")
        );
        // The new counters are part of the fixed taxonomy and always appear.
        for family in [
            "aim_timeseries_windows",
            "aim_trace_spans_stitched",
            "aim_telemetry_journal_dropped",
            "aim_telemetry_series_dropped",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
        }
        crate::reset();
    }

    /// Satellite: hostile label values — backslashes, quotes and newlines —
    /// must render escaped per exposition format 0.0.4 and still parse as
    /// one sample per line.
    #[test]
    fn hostile_label_values_are_escaped() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        let hostile = "a\\b\"c\nd";
        crate::metrics::counter_add_labeled("hostile.hits", &[("tenant", hostile)], 7);
        crate::disable();

        let text = render_prometheus(&crate::metrics::snapshot());
        let line = text
            .lines()
            .find(|l| l.starts_with("aim_hostile_hits{"))
            .expect("labeled sample rendered");
        assert_eq!(
            line,
            "aim_hostile_hits{tenant=\"a\\\\b\\\"c\\nd\"} 7",
            "escaping mismatch"
        );
        // No raw newline survived into the sample (it would split the line).
        assert_eq!(
            text.lines().filter(|l| l.contains("hostile")).count(),
            3, // HELP + TYPE + the one sample
        );
        crate::reset();
    }

    #[test]
    fn fleet_and_alerts_routes_serve_live_rollups() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        for (tenant, shards, granted, used, cost) in [
            ("t0", 3u64, 4096i64, 2048i64, 10.0),
            ("t1", 1, 1024, 512, 500.0),
        ] {
            let _t = crate::metrics::scope(tenant);
            crate::metrics::FLEET_SHARDS_TUNED.add(shards);
            crate::metrics::gauge_set("fleet.budget_granted_bytes", granted);
            crate::metrics::gauge_set("fleet.budget_used_bytes", used);
            crate::metrics::histogram_record("fleet.tenant_duration", 5.0);
            crate::metrics::histogram_record("exec.select_cost", cost);
        }
        crate::slo::register(crate::SloRule::new("lat", "exec.select_cost", 100.0).windows(1, 2));
        crate::timeseries::tick("fleet_test");

        let server = IntrospectionServer::start(0).expect("bind loopback");
        let addr = server.addr();

        let (head, body) = get(addr, "/fleet?sort=p99&top=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let doc = crate::jsonv::parse(&body).expect("fleet json parses");
        let tenants = doc.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 1, "top=1 truncates");
        assert_eq!(tenants[0].get("tenant").unwrap().as_str(), Some("t1"));
        assert_eq!(
            tenants[0].get("budget_granted_bytes").unwrap().as_f64(),
            Some(1024.0)
        );
        assert_eq!(tenants[0].get("shards_tuned").unwrap().as_f64(), Some(1.0));

        let (head, body) = get(addr, "/alerts");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let doc = crate::jsonv::parse(&body).expect("alerts json parses");
        let alerts = doc.get("alerts").unwrap().as_arr().unwrap();
        assert!(alerts
            .iter()
            .any(|a| a.get("tenant").unwrap().as_str() == Some("t1")
                && a.get("firing").unwrap().as_bool() == Some(true)));
        assert!(alerts
            .iter()
            .any(|a| a.get("tenant").unwrap().as_str() == Some("t0")
                && a.get("firing").unwrap().as_bool() == Some(false)));

        server.shutdown();
        crate::disable();
        crate::reset();
    }
}
