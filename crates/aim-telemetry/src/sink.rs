//! Pluggable event sinks.
//!
//! Every journal event is pushed to each registered [`EventSink`] as it
//! happens. [`MemorySink`] backs tests (shared handle to the captured
//! events); [`JsonLinesSink`] streams events as JSON lines for the
//! `results/` artifacts of the bench binaries.

use crate::journal::Event;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives journal events as they are recorded.
pub trait EventSink: Send {
    fn emit(&mut self, event: &Event);
    /// Flushes buffered output (files). Default: nothing.
    fn flush(&mut self) {}
}

static SINKS: Mutex<Vec<Box<dyn EventSink>>> = Mutex::new(Vec::new());

/// Registers a sink; it receives every subsequent event.
pub fn add_sink(sink: Box<dyn EventSink>) {
    SINKS.lock().unwrap_or_else(|e| e.into_inner()).push(sink);
}

/// Flushes and removes all registered sinks.
pub fn clear_sinks() {
    let mut sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    for s in sinks.iter_mut() {
        s.flush();
    }
    sinks.clear();
}

/// Flushes every registered sink without removing it.
pub fn flush_sinks() {
    for s in SINKS.lock().unwrap_or_else(|e| e.into_inner()).iter_mut() {
        s.flush();
    }
}

pub(crate) fn dispatch(event: &Event) {
    for s in SINKS.lock().unwrap_or_else(|e| e.into_inner()).iter_mut() {
        s.emit(event);
    }
}

/// Captures events in memory; the handle returned by [`MemorySink::handle`]
/// stays valid after the sink is boxed and registered.
#[derive(Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared view of the captured events.
    pub fn handle(&self) -> MemorySinkHandle {
        MemorySinkHandle {
            events: Arc::clone(&self.events),
        }
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Read side of a [`MemorySink`].
#[derive(Clone)]
pub struct MemorySinkHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySinkHandle {
    /// All events captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Clears the captured events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Streams each event as one JSON object per line.
///
/// Write failures do not panic (the advisor must outlive a full disk), but
/// they are not silent either: every failed write increments the
/// `telemetry.sink_errors` counter, and the first failure per sink prints a
/// warning to stderr so the operator learns the artifact is incomplete.
pub struct JsonLinesSink {
    writer: Box<dyn Write + Send>,
    label: String,
    warned: bool,
}

impl JsonLinesSink {
    /// Sink writing to (truncating) the given file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Box::new(std::io::BufWriter::new(file)),
            label: path.display().to_string(),
            warned: false,
        })
    }

    /// Sink writing to an arbitrary writer (tests, stderr...).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer,
            label: "<writer>".to_string(),
            warned: false,
        }
    }

    fn note_error(&mut self, op: &str, err: &std::io::Error) {
        crate::metrics::SINK_ERRORS.incr();
        if !self.warned {
            self.warned = true;
            eprintln!(
                "aim-telemetry: event sink {} failed to {op}: {err} \
                 (journal artifact will be incomplete; further errors suppressed)",
                self.label
            );
        }
    }
}

impl EventSink for JsonLinesSink {
    fn emit(&mut self, event: &Event) {
        if let Err(e) = writeln!(self.writer, "{}", crate::report::event_json(event)) {
            self.note_error("write", &e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.note_error("flush", &e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{event, EventKind};

    #[test]
    fn memory_sink_captures_in_order() {
        let _g = crate::tests::lock();
        crate::reset();
        clear_sinks();
        let sink = MemorySink::new();
        let handle = sink.handle();
        add_sink(Box::new(sink));
        crate::enable();
        event(EventKind::IndexAccepted, "a", "first");
        event(EventKind::IndexRejected, "b", "second");
        crate::disable();
        let evs = handle.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].target, "a");
        assert_eq!(evs[1].kind, EventKind::IndexRejected);
        clear_sinks();
        crate::reset();
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let _g = crate::tests::lock();
        crate::reset();
        clear_sinks();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        add_sink(Box::new(JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))))));
        crate::enable();
        event(EventKind::PlanChosen, "t \"x\"", "detail");
        crate::disable();
        clear_sinks();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"plan_chosen\""));
        assert!(text.contains("t \\\"x\\\""));
        crate::reset();
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        let _g = crate::tests::lock();
        crate::reset();
        clear_sinks();
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        add_sink(Box::new(JsonLinesSink::new(Box::new(Broken))));
        crate::enable();
        event(EventKind::PlanChosen, "q1", "");
        event(EventKind::PlanChosen, "q2", "");
        crate::disable();
        clear_sinks();
        // Every lost event is counted, not just the first (which also
        // prints a one-time stderr warning).
        assert_eq!(
            crate::snapshot().counter("telemetry.sink_errors"),
            Some(2)
        );
        crate::reset();
    }
}
