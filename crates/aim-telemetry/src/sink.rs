//! Pluggable event sinks.
//!
//! Every journal event is pushed to each registered [`EventSink`] as it
//! happens. [`MemorySink`] backs tests (shared handle to the captured
//! events); [`JsonLinesSink`] streams events as JSON lines for the
//! `results/` artifacts of the bench binaries.

use crate::journal::Event;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives journal events as they are recorded.
pub trait EventSink: Send {
    fn emit(&mut self, event: &Event);
    /// Flushes buffered output (files). Default: nothing.
    fn flush(&mut self) {}
}

static SINKS: Mutex<Vec<Box<dyn EventSink>>> = Mutex::new(Vec::new());

/// Registers a sink; it receives every subsequent event.
pub fn add_sink(sink: Box<dyn EventSink>) {
    SINKS.lock().unwrap_or_else(|e| e.into_inner()).push(sink);
}

/// Flushes and removes all registered sinks.
pub fn clear_sinks() {
    let mut sinks = SINKS.lock().unwrap_or_else(|e| e.into_inner());
    for s in sinks.iter_mut() {
        s.flush();
    }
    sinks.clear();
}

/// Flushes every registered sink without removing it.
pub fn flush_sinks() {
    for s in SINKS.lock().unwrap_or_else(|e| e.into_inner()).iter_mut() {
        s.flush();
    }
}

pub(crate) fn dispatch(event: &Event) {
    for s in SINKS.lock().unwrap_or_else(|e| e.into_inner()).iter_mut() {
        s.emit(event);
    }
}

/// Captures events in memory; the handle returned by [`MemorySink::handle`]
/// stays valid after the sink is boxed and registered.
#[derive(Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared view of the captured events.
    pub fn handle(&self) -> MemorySinkHandle {
        MemorySinkHandle {
            events: Arc::clone(&self.events),
        }
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Read side of a [`MemorySink`].
#[derive(Clone)]
pub struct MemorySinkHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySinkHandle {
    /// All events captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Clears the captured events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Streams each event as one JSON object per line.
pub struct JsonLinesSink {
    writer: Box<dyn Write + Send>,
}

impl JsonLinesSink {
    /// Sink writing to (truncating) the given file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Box::new(std::io::BufWriter::new(file)),
        })
    }

    /// Sink writing to an arbitrary writer (tests, stderr...).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer }
    }
}

impl EventSink for JsonLinesSink {
    fn emit(&mut self, event: &Event) {
        let _ = writeln!(self.writer, "{}", crate::report::event_json(event));
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{event, EventKind};

    #[test]
    fn memory_sink_captures_in_order() {
        let _g = crate::tests::lock();
        crate::reset();
        clear_sinks();
        let sink = MemorySink::new();
        let handle = sink.handle();
        add_sink(Box::new(sink));
        crate::enable();
        event(EventKind::IndexAccepted, "a", "first");
        event(EventKind::IndexRejected, "b", "second");
        crate::disable();
        let evs = handle.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].target, "a");
        assert_eq!(evs[1].kind, EventKind::IndexRejected);
        clear_sinks();
        crate::reset();
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let _g = crate::tests::lock();
        crate::reset();
        clear_sinks();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        add_sink(Box::new(JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))))));
        crate::enable();
        event(EventKind::PlanChosen, "t \"x\"", "detail");
        crate::disable();
        clear_sinks();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"plan_chosen\""));
        assert!(text.contains("t \\\"x\\\""));
        crate::reset();
    }
}
