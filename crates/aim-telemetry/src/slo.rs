//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloRule`] names a windowed histogram stat (e.g. the p99 of
//! `exec.select_cost`), a target it must stay under, and an error budget:
//! the fraction of windows allowed to violate the target. [`evaluate`]
//! sweeps the [`crate::timeseries`] ring and computes the *burn rate* —
//! violating fraction ÷ budget — over two lookbacks, a fast one (default
//! 5 windows) and a slow one (default 60). A rule **fires** only when both
//! burns meet the threshold: the fast window gives quick detection, the
//! slow window suppresses one-off blips, the classic multi-window
//! burn-rate construction from SRE alerting practice.
//!
//! Rules marked `per_tenant` evaluate every `tenant`-labeled variant of
//! the metric separately (plus the unlabeled all-tenant series), so a
//! single rule covers a whole fleet and a firing status names the tenant
//! that burned its budget. Series carrying extra labels (a tuning-phase
//! scope, say) are excluded — SLOs judge live traffic, not tuning
//! replays. The `/alerts` endpoint renders [`alerts_json`]; the fleet and
//! continuous drivers feed firing tenants into the latency sentinel's
//! rollback decision.

use std::collections::BTreeSet;
use std::sync::Mutex;

use crate::metrics;
use crate::report::json_escape;
use crate::timeseries::{self, WindowHistogram};

/// Which windowed histogram stat an SLO tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStat {
    P50,
    P90,
    P99,
    Mean,
}

impl SloStat {
    fn of(self, h: &WindowHistogram) -> f64 {
        match self {
            SloStat::P50 => h.p50,
            SloStat::P90 => h.p90,
            SloStat::P99 => h.p99,
            SloStat::Mean => h.mean(),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            SloStat::P50 => "p50",
            SloStat::P90 => "p90",
            SloStat::P99 => "p99",
            SloStat::Mean => "mean",
        }
    }
}

/// One declarative SLO rule. Construct with [`SloRule::new`] and adjust
/// the defaults with the chainable setters.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Rule name, e.g. `select-latency`.
    pub name: String,
    /// Base histogram name the rule watches, e.g. `exec.select_cost`.
    pub metric: String,
    /// Windowed stat compared against the target.
    pub stat: SloStat,
    /// The stat must stay strictly under this value.
    pub target: f64,
    /// Evaluate each `tenant`-labeled series separately.
    pub per_tenant: bool,
    /// Fast lookback (windows) for quick detection.
    pub fast_windows: usize,
    /// Slow lookback (windows) for blip suppression; clamped to the
    /// windows actually present in the ring.
    pub slow_windows: usize,
    /// Error budget: allowed violating fraction of windows (0, 1].
    pub budget: f64,
    /// Fire when both burn rates reach this multiple of the budget.
    pub burn_threshold: f64,
}

impl SloRule {
    /// A per-tenant p99 rule with the default 5/60 windows, a 10% budget
    /// and a burn threshold of 1.0.
    pub fn new(name: &str, metric: &str, target: f64) -> Self {
        Self {
            name: name.to_string(),
            metric: metric.to_string(),
            stat: SloStat::P99,
            target,
            per_tenant: true,
            fast_windows: 5,
            slow_windows: 60,
            budget: 0.1,
            burn_threshold: 1.0,
        }
    }

    pub fn stat(mut self, stat: SloStat) -> Self {
        self.stat = stat;
        self
    }

    pub fn per_tenant(mut self, per_tenant: bool) -> Self {
        self.per_tenant = per_tenant;
        self
    }

    pub fn windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_windows = fast.max(1);
        self.slow_windows = slow.max(self.fast_windows);
        self
    }

    pub fn budget(mut self, budget: f64) -> Self {
        self.budget = budget.clamp(1e-6, 1.0);
        self
    }

    pub fn burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold.max(0.0);
        self
    }
}

/// Evaluation outcome for one (rule, tenant) pair.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// Name of the rule that produced this status.
    pub rule: String,
    /// Base metric the rule watches.
    pub metric: String,
    /// Tenant the status applies to; `None` is the all-tenant series.
    pub tenant: Option<String>,
    /// Stat value in the most recent window holding data.
    pub current: f64,
    /// The rule's target.
    pub target: f64,
    /// Burn rate over the fast lookback.
    pub fast_burn: f64,
    /// Burn rate over the slow lookback (clamped to ring length).
    pub slow_burn: f64,
    /// Whether both burns met the rule's threshold.
    pub firing: bool,
}

static RULES: Mutex<Option<Vec<SloRule>>> = Mutex::new(None);

fn with_rules<R>(f: impl FnOnce(&mut Vec<SloRule>) -> R) -> R {
    let mut guard = RULES.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Vec::new))
}

/// Registers a rule (replacing any existing rule of the same name).
pub fn register(rule: SloRule) {
    with_rules(|rules| {
        rules.retain(|r| r.name != rule.name);
        rules.push(rule);
    });
}

/// Drops all registered rules.
pub fn clear() {
    with_rules(|rules| rules.clear());
}

/// The registered rules, in registration order.
pub fn rules() -> Vec<SloRule> {
    with_rules(|rules| rules.clone())
}

/// Burn rate of `rule` for `tenant` over the last `lookback` windows of
/// `stats`: violating fraction of data-bearing windows ÷ budget. `None`
/// when no window in the lookback holds data for the series.
fn burn(
    rule: &SloRule,
    tenant: &Option<String>,
    lookback: usize,
    stats: &[Vec<(Option<String>, f64)>],
) -> Option<f64> {
    let take = lookback.min(stats.len());
    let mut seen = 0u64;
    let mut violated = 0u64;
    for per_window in stats.iter().rev().take(take) {
        if let Some((_, v)) = per_window.iter().find(|(t, _)| t == tenant) {
            seen += 1;
            if *v > rule.target {
                violated += 1;
            }
        }
    }
    (seen > 0).then(|| (violated as f64 / seen as f64) / rule.budget)
}

/// Evaluates every rule against the timeseries ring, returning one status
/// per (rule, observed series). Updates the `slo.rules` / `slo.firing`
/// gauges and the `slo.evaluations` counter as a side effect.
pub fn evaluate() -> Vec<SloStatus> {
    let ruleset = rules();
    let deepest = ruleset
        .iter()
        .map(|r| r.slow_windows)
        .max()
        .unwrap_or(0);
    let windows = timeseries::recent(deepest);
    let mut out = Vec::new();
    for rule in &ruleset {
        // Per-window `(tenant, stat)` samples, oldest window first.
        let stats: Vec<Vec<(Option<String>, f64)>> = windows
            .iter()
            .map(|w| {
                w.tenant_histograms(&rule.metric)
                    .into_iter()
                    .filter(|(t, _)| rule.per_tenant || t.is_none())
                    .map(|(t, h)| (t, rule.stat.of(h)))
                    .collect()
            })
            .collect();
        let mut tenants: BTreeSet<Option<String>> = BTreeSet::new();
        for per_window in &stats {
            for (t, _) in per_window {
                tenants.insert(t.clone());
            }
        }
        for tenant in tenants {
            let Some(fast) = burn(rule, &tenant, rule.fast_windows, &stats) else {
                continue;
            };
            let slow = burn(rule, &tenant, rule.slow_windows, &stats).unwrap_or(0.0);
            let current = stats
                .iter()
                .rev()
                .find_map(|pw| pw.iter().find(|(t, _)| *t == tenant).map(|(_, v)| *v))
                .unwrap_or(0.0);
            out.push(SloStatus {
                rule: rule.name.clone(),
                metric: rule.metric.clone(),
                tenant,
                current,
                target: rule.target,
                fast_burn: fast,
                slow_burn: slow,
                firing: fast >= rule.burn_threshold && slow >= rule.burn_threshold,
            });
        }
    }
    metrics::gauge_set("slo.rules", ruleset.len() as i64);
    metrics::gauge_set("slo.firing", out.iter().filter(|s| s.firing).count() as i64);
    metrics::counter_add("slo.evaluations", 1);
    out
}

/// Tenants whose per-tenant SLO on `metric` is firing. The unlabeled
/// all-tenant series contributes an empty string.
pub fn firing_tenants(metric: &str) -> BTreeSet<String> {
    evaluate()
        .into_iter()
        .filter(|s| s.firing && s.metric == metric)
        .map(|s| s.tenant.unwrap_or_default())
        .collect()
}

/// JSON document for the `/alerts` endpoint: every registered rule and
/// every evaluated status, firing or not.
pub fn alerts_json() -> String {
    let ruleset = rules();
    let statuses = evaluate();
    let mut out = String::from("{\"rules\":[");
    for (i, r) in ruleset.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"metric\":\"{}\",\"stat\":\"{}\",\"target\":{:.3},\
             \"per_tenant\":{},\"fast_windows\":{},\"slow_windows\":{},\
             \"budget\":{:.4},\"burn_threshold\":{:.3}}}",
            json_escape(&r.name),
            json_escape(&r.metric),
            r.stat.as_str(),
            r.target,
            r.per_tenant,
            r.fast_windows,
            r.slow_windows,
            r.budget,
            r.burn_threshold,
        ));
    }
    out.push_str("],\"alerts\":[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tenant = match &s.tenant {
            Some(t) => format!("\"{}\"", json_escape(t)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"metric\":\"{}\",\"tenant\":{},\"current\":{:.3},\
             \"target\":{:.3},\"fast_burn\":{:.3},\"slow_burn\":{:.3},\"firing\":{}}}",
            json_escape(&s.rule),
            json_escape(&s.metric),
            tenant,
            s.current,
            s.target,
            s.fast_burn,
            s.slow_burn,
            s.firing,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_window(values: &[(&str, f64)]) {
        for (tenant, v) in values {
            let _t = metrics::scope(tenant);
            metrics::histogram_record("slo.test_cost", *v);
        }
        timeseries::tick("slo_test");
    }

    #[test]
    fn burn_rate_fires_per_tenant_and_clears() {
        let _g = crate::tests::lock();
        crate::reset();
        clear();
        crate::enable();
        register(SloRule::new("lat", "slo.test_cost", 100.0).windows(3, 10));

        // Three healthy windows for both tenants.
        for _ in 0..3 {
            seed_window(&[("good", 10.0), ("bad", 20.0)]);
        }
        let statuses = evaluate();
        assert!(statuses.iter().all(|s| !s.firing));

        // Tenant `bad` regresses for three straight windows.
        for _ in 0..3 {
            seed_window(&[("good", 10.0), ("bad", 900.0)]);
        }
        let statuses = evaluate();
        let bad = statuses
            .iter()
            .find(|s| s.tenant.as_deref() == Some("bad"))
            .unwrap();
        assert!(bad.firing, "fast {} slow {}", bad.fast_burn, bad.slow_burn);
        assert!(bad.current > 100.0);
        let good = statuses
            .iter()
            .find(|s| s.tenant.as_deref() == Some("good"))
            .unwrap();
        assert!(!good.firing);
        // The all-tenant series also exists (flat twin) and is regressed,
        // since the blended p99 tracks the bad tenant.
        assert!(statuses.iter().any(|s| s.tenant.is_none()));
        assert!(firing_tenants("slo.test_cost").contains("bad"));

        // Recovery: enough clean windows dilute the fast burn below 1.
        for _ in 0..6 {
            seed_window(&[("good", 10.0), ("bad", 20.0)]);
        }
        let statuses = evaluate();
        let bad = statuses
            .iter()
            .find(|s| s.tenant.as_deref() == Some("bad"))
            .unwrap();
        assert!(!bad.firing, "fast {} slow {}", bad.fast_burn, bad.slow_burn);

        crate::disable();
        clear();
        crate::reset();
    }

    #[test]
    fn alerts_json_is_valid_and_complete() {
        let _g = crate::tests::lock();
        crate::reset();
        clear();
        crate::enable();
        register(SloRule::new("lat\"q", "slo.test_cost", 50.0).windows(2, 4));
        seed_window(&[("t0", 500.0)]);
        seed_window(&[("t0", 500.0)]);
        let doc = crate::jsonv::parse(&alerts_json()).expect("alerts json parses");
        let rules = doc.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].get("name").unwrap().as_str(), Some("lat\"q"));
        let alerts = doc.get("alerts").unwrap().as_arr().unwrap();
        assert!(alerts
            .iter()
            .any(|a| a.get("tenant").unwrap().as_str() == Some("t0")
                && a.get("firing").unwrap().as_bool() == Some(true)));
        crate::disable();
        clear();
        crate::reset();
    }
}
