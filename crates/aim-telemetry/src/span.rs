//! Scoped spans: RAII timers that aggregate into a per-thread phase tree.
//!
//! A [`span`] opened while another span is live becomes its child. Closing
//! a span folds its subtree into the parent, merging siblings by name —
//! `rank_candidates` called 40 times under `tune` shows up as one node with
//! `count = 40` and the summed wall time. When the outermost span closes,
//! the finished tree lands in the thread's profile, retrieved with
//! [`take_profile`] (drains) or [`profile_snapshot`] (clones).
//!
//! The tree is thread-local: concurrent profiled regions never interleave,
//! and the advisor (single-threaded today) pays no locking on this path.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// One aggregated node of the span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    /// Number of spans merged into this node.
    pub count: u64,
    /// Total wall time across those spans.
    pub total: Duration,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Finds a node by a `/`-separated path of span names.
    pub fn descendant(&self, path: &str) -> Option<&ProfileNode> {
        let mut node = self;
        for part in path.split('/') {
            node = node.child(part)?;
        }
        Some(node)
    }

    /// Sum of the direct children's totals.
    pub fn children_total(&self) -> Duration {
        self.children.iter().map(|c| c.total).sum()
    }
}

struct Frame {
    name: &'static str,
    start: Instant,
    children: Vec<ProfileNode>,
}

#[derive(Default)]
struct SpanState {
    stack: Vec<Frame>,
    /// Completed root spans, aggregated by name.
    finished: Vec<ProfileNode>,
}

thread_local! {
    static STATE: RefCell<SpanState> = RefCell::new(SpanState::default());
}

/// Merges `node` into `dst`, combining with an existing sibling of the
/// same name (counts and totals add, children merge recursively).
fn merge_node(dst: &mut Vec<ProfileNode>, node: ProfileNode) {
    if let Some(existing) = dst.iter_mut().find(|n| n.name == node.name) {
        existing.count += node.count;
        existing.total += node.total;
        for child in node.children {
            merge_node(&mut existing.children, child);
        }
    } else {
        dst.push(node);
    }
}

fn close_top(state: &mut SpanState) {
    let Some(frame) = state.stack.pop() else {
        return;
    };
    let total = frame.start.elapsed();
    crate::trace::record_closed(frame.name, frame.start, total);
    let node = ProfileNode {
        name: frame.name.to_string(),
        count: 1,
        total,
        children: frame.children,
    };
    match state.stack.last_mut() {
        Some(parent) => merge_node(&mut parent.children, node),
        None => merge_node(&mut state.finished, node),
    }
}

/// Merges an externally produced subtree — a worker profile stitched back
/// by [`crate::trace::TraceContext::stitch`] — into this thread's currently
/// open span frame, or into the finished roots when no span is open.
pub(crate) fn graft(node: ProfileNode) {
    let _ = STATE.try_with(|s| {
        let mut s = s.borrow_mut();
        match s.stack.last_mut() {
            Some(frame) => merge_node(&mut frame.children, node),
            None => merge_node(&mut s.finished, node),
        }
    });
}

/// A live span. Dropping it records the elapsed time into the phase tree.
#[must_use = "a span guard must be held for the duration of the phase"]
pub struct SpanGuard {
    start: Instant,
    /// Stack depth of this span's frame (`None` when telemetry was off at
    /// open, or the frame could not be pushed).
    depth: Option<usize>,
}

impl SpanGuard {
    /// Wall time since the span opened. Works whether or not telemetry is
    /// enabled, so callers can use the span as their only timer.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        let _ = STATE.try_with(|s| {
            let mut s = s.borrow_mut();
            // Close any deeper frames first (leaked guards), then ours.
            while s.stack.len() >= depth {
                close_top(&mut s);
            }
        });
    }
}

/// Opens a span. When telemetry is disabled this is just a cheap
/// stopwatch: no tree bookkeeping happens.
pub fn span(name: &'static str) -> SpanGuard {
    let start = Instant::now();
    let depth = if crate::is_enabled() {
        STATE
            .try_with(|s| {
                let mut s = s.borrow_mut();
                s.stack.push(Frame {
                    name,
                    start,
                    children: Vec::new(),
                });
                s.stack.len()
            })
            .ok()
    } else {
        None
    };
    SpanGuard { start, depth }
}

/// Returns and clears this thread's finished span tree. The returned
/// synthetic root has one child per distinct root span name.
pub fn take_profile() -> ProfileNode {
    STATE.with(|s| ProfileNode {
        name: String::new(),
        count: 0,
        total: Duration::ZERO,
        children: std::mem::take(&mut s.borrow_mut().finished),
    })
}

/// Like [`take_profile`] but leaves the collected tree in place.
pub fn profile_snapshot() -> ProfileNode {
    STATE.with(|s| ProfileNode {
        name: String::new(),
        count: 0,
        total: Duration::ZERO,
        children: s.borrow().finished.clone(),
    })
}

// The span tree is thread-local, so the introspection server (which runs on
// its own thread) cannot see it directly. Threads that want their profile
// visible on `/profile` publish it into this process-wide slot; repeated
// publishes merge by span name, like siblings within a tree.
static PUBLISHED: std::sync::Mutex<Vec<ProfileNode>> = std::sync::Mutex::new(Vec::new());

/// Drains this thread's finished span tree and merges it into the
/// process-wide published profile (served by the introspection endpoint's
/// `/profile`). Draining (rather than copying) keeps repeated publishes
/// from double counting: each finished root lands in the published tree
/// exactly once.
pub fn publish_profile() {
    let snapshot = take_profile();
    let mut published = PUBLISHED.lock().unwrap_or_else(|e| e.into_inner());
    for root in snapshot.children {
        merge_node(&mut published, root);
    }
}

/// The most recently published profile (synthetic root, one child per root
/// span name), or an empty tree when nothing was published.
pub fn published_profile() -> ProfileNode {
    ProfileNode {
        name: String::new(),
        count: 0,
        total: Duration::ZERO,
        children: PUBLISHED.lock().unwrap_or_else(|e| e.into_inner()).clone(),
    }
}

/// Clears this thread's span state (open frames and finished roots) and the
/// process-wide published profile.
pub fn reset() {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.stack.clear();
        s.finished.clear();
    });
    PUBLISHED.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_aggregation() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
            {
                let _other = span("other");
                let _deep = span("inner");
            }
        }
        crate::disable();
        let p = take_profile();
        let outer = p.child("outer").expect("outer recorded");
        assert_eq!(outer.count, 1);
        let inner = outer.child("inner").expect("inner recorded");
        assert_eq!(inner.count, 3);
        assert_eq!(outer.child("other").and_then(|o| o.child("inner")).map(|n| n.count), Some(1));
        assert!(outer.total >= outer.children_total());
        // Drained.
        assert!(take_profile().children.is_empty());
    }

    #[test]
    fn repeated_roots_merge() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        for _ in 0..4 {
            let _s = span("pass");
        }
        crate::disable();
        let p = take_profile();
        assert_eq!(p.children.len(), 1);
        assert_eq!(p.children[0].count, 4);
    }

    #[test]
    fn publish_merges_without_double_counting() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _s = span("pass");
        }
        publish_profile();
        {
            let _s = span("pass");
        }
        publish_profile();
        // Publishing with nothing new finished is a no-op.
        publish_profile();
        crate::disable();
        let p = published_profile();
        assert_eq!(p.children.len(), 1);
        assert_eq!(p.children[0].name, "pass");
        assert_eq!(p.children[0].count, 2);
        crate::reset();
        assert!(published_profile().children.is_empty());
    }

    #[test]
    fn descendant_lookup() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _a = span("a");
            let _b = span("b");
            let _c = span("c");
        }
        crate::disable();
        let p = take_profile();
        assert!(p.descendant("a/b/c").is_some());
        assert!(p.descendant("a/c").is_none());
    }
}
