//! Windowed time-series telemetry.
//!
//! The cumulative instruments in [`crate::metrics`] answer "how much since
//! start"; continuous tuning needs "how much *lately*". This module keeps a
//! fixed-capacity ring buffer of per-window deltas: each [`tick`] diffs the
//! current metrics snapshot against the previous one and stores counters as
//! (delta, rate/sec) pairs and histograms as windowed p50/p90/p99 computed
//! from the log₂ bucket deltas. The `ContinuousTuner` ticks once per tuning
//! window, the regression sentinel consumes the resulting [`Window`]s, and
//! the introspection server exposes the ring at `/timeseries`.
//!
//! Like everything else in this crate the module is a no-op while telemetry
//! is disabled: [`tick`] returns `None` without taking any lock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{self, HistogramSnapshot};
use crate::report::json_escape;

/// Default ring capacity: enough for a few hours of minute-grained windows.
pub const DEFAULT_CAPACITY: usize = 240;

/// Windowed view of one histogram: stats over only the observations that
/// arrived during the window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowHistogram {
    /// Observations recorded during the window.
    pub count: u64,
    /// Sum of those observations.
    pub sum: f64,
    /// Median estimate from the windowed log₂ bucket deltas.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl WindowHistogram {
    /// Mean observation over the window (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One closed telemetry window: metric deltas between two consecutive
/// [`tick`]s. Counters and histograms that did not change during the window
/// are omitted.
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// 1-based tick sequence number (monotonic, survives ring eviction).
    pub index: u64,
    /// Caller-supplied label, e.g. `continuous_window`.
    pub label: String,
    /// Wall-clock span of the window. The first window after a reset has no
    /// predecessor tick and reports [`Duration::ZERO`] (its rates are 0).
    pub duration: Duration,
    /// `(name, delta, rate per second)` for counters that moved.
    pub counters: Vec<(String, u64, f64)>,
    /// Windowed stats for histograms that received observations.
    pub histograms: Vec<(String, WindowHistogram)>,
}

impl Window {
    /// Delta of a counter over this window, `None` if it did not move.
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, d, _)| *d)
    }

    /// Windowed stats for a histogram, `None` if it saw no observations.
    pub fn histogram(&self, name: &str) -> Option<&WindowHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Every labeled variant of histogram `base` that saw observations in
    /// this window, as `(labels, stats)`; the unlabeled series appears
    /// with an empty label list.
    pub fn histogram_series(&self, base: &str) -> Vec<(Vec<(String, String)>, &WindowHistogram)> {
        self.histograms
            .iter()
            .filter(|(n, _)| metrics::series_base(n) == base)
            .map(|(n, h)| (metrics::parse_series(n).1, h))
            .collect()
    }

    /// Per-tenant views of histogram `base`: the unlabeled (all-tenant)
    /// series as `None` and each purely tenant-labeled series as
    /// `Some(tenant)`. Series carrying extra labels (e.g. a `phase` from a
    /// tuning worker) are deliberately excluded so live-traffic judgments
    /// (sentinel, SLOs) are not polluted by tuning-internal replays.
    pub fn tenant_histograms(&self, base: &str) -> Vec<(Option<String>, &WindowHistogram)> {
        self.histogram_series(base)
            .into_iter()
            .filter_map(|(labels, h)| match labels.as_slice() {
                [] => Some((None, h)),
                [(k, v)] if k == "tenant" => Some((Some(v.clone()), h)),
                _ => None,
            })
            .collect()
    }

    fn json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"index\":{},\"label\":\"{}\",\"duration_ms\":{:.3},\"counters\":{{",
            self.index,
            json_escape(&self.label),
            self.duration.as_secs_f64() * 1e3,
        ));
        for (i, (name, delta, rate)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"delta\":{},\"rate\":{:.3}}}",
                json_escape(name),
                delta,
                rate
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{:.3},\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.p50,
                h.p90,
                h.p99
            ));
        }
        out.push_str("}}");
    }
}

/// Cumulative histogram state at a tick: count, sum, non-empty buckets.
type HistBaseline = (u64, f64, Vec<(f64, u64)>);

/// Cumulative baseline captured at the previous tick.
struct Baseline {
    at: Instant,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistBaseline>,
}

struct State {
    capacity: usize,
    ticks: u64,
    ring: VecDeque<Window>,
    last: Option<Baseline>,
}

impl Default for State {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_CAPACITY,
            ticks: 0,
            ring: VecDeque::new(),
            last: None,
        }
    }
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(State::default))
}

/// Subtracts a cumulative bucket list from a newer one. Both lists are
/// sorted by upper bound (they come from [`metrics::snapshot`]).
fn bucket_deltas(now: &[(f64, u64)], then: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let prior: BTreeMap<u64, u64> = then.iter().map(|&(u, c)| (u.to_bits(), c)).collect();
    now.iter()
        .filter_map(|&(upper, count)| {
            let before = prior.get(&upper.to_bits()).copied().unwrap_or(0);
            let delta = count.saturating_sub(before);
            (delta > 0).then_some((upper, delta))
        })
        .collect()
}

/// Windowed histogram stats from bucket deltas, reusing the cumulative
/// snapshot's interpolating [`HistogramSnapshot::quantile`]. The windowed
/// min/max are approximated by the delta buckets' edge bounds.
fn window_histogram(count: u64, sum: f64, deltas: Vec<(f64, u64)>) -> WindowHistogram {
    let min = deltas
        .first()
        .map(|&(u, _)| if u <= 1.0 { 0.0 } else { u / 2.0 })
        .unwrap_or(0.0);
    let max = deltas.last().map(|&(u, _)| u).unwrap_or(0.0);
    let snap = HistogramSnapshot {
        count,
        sum,
        min,
        max,
        buckets: deltas,
        p50: 0.0,
        p90: 0.0,
        p99: 0.0,
    };
    WindowHistogram {
        count,
        sum,
        p50: snap.quantile(0.50),
        p90: snap.quantile(0.90),
        p99: snap.quantile(0.99),
    }
}

/// Closes the current window: diffs the metrics snapshot against the
/// previous tick's baseline, pushes the resulting [`Window`] into the ring
/// (evicting the oldest at capacity) and returns a copy of it. Returns
/// `None` while telemetry is disabled.
pub fn tick(label: &str) -> Option<Window> {
    if !crate::is_enabled() {
        return None;
    }
    let snap = metrics::snapshot();
    let now = Instant::now();
    let window = with_state(|s| {
        let baseline = s.last.take();
        let duration = baseline
            .as_ref()
            .map(|b| now.saturating_duration_since(b.at))
            .unwrap_or(Duration::ZERO);
        let secs = duration.as_secs_f64();

        let mut counters = Vec::new();
        for (name, value) in &snap.counters {
            let before = baseline
                .as_ref()
                .and_then(|b| b.counters.get(name).copied())
                .unwrap_or(0);
            let delta = value.saturating_sub(before);
            if delta > 0 {
                let rate = if secs > 0.0 { delta as f64 / secs } else { 0.0 };
                counters.push((name.clone(), delta, rate));
            }
        }

        let mut histograms = Vec::new();
        for (name, h) in &snap.histograms {
            let (pc, ps, pb) = baseline
                .as_ref()
                .and_then(|b| b.histograms.get(name))
                .cloned()
                .unwrap_or((0, 0.0, Vec::new()));
            let count = h.count.saturating_sub(pc);
            if count == 0 {
                continue;
            }
            let sum = (h.sum - ps).max(0.0);
            let deltas = bucket_deltas(&h.buckets, &pb);
            histograms.push((name.clone(), window_histogram(count, sum, deltas)));
        }

        s.ticks += 1;
        let window = Window {
            index: s.ticks,
            label: label.to_string(),
            duration,
            counters,
            histograms,
        };
        while s.ring.len() >= s.capacity {
            s.ring.pop_front();
        }
        s.ring.push_back(window.clone());
        s.last = Some(Baseline {
            at: now,
            counters: snap.counters.iter().cloned().collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), (h.count, h.sum, h.buckets.clone())))
                .collect(),
        });
        window
    });
    metrics::TIMESERIES_WINDOWS.incr();
    Some(window)
}

/// The most recent `n` windows, oldest first.
pub fn recent(n: usize) -> Vec<Window> {
    with_state(|s| {
        let skip = s.ring.len().saturating_sub(n);
        s.ring.iter().skip(skip).cloned().collect()
    })
}

/// Number of windows currently held in the ring.
pub fn len() -> usize {
    with_state(|s| s.ring.len())
}

/// Total ticks since the last reset (monotonic; unaffected by eviction).
pub fn ticks() -> u64 {
    with_state(|s| s.ticks)
}

/// Resizes the ring, evicting the oldest windows if shrinking. Capacity is
/// clamped to at least 1.
pub fn set_capacity(capacity: usize) {
    with_state(|s| {
        s.capacity = capacity.max(1);
        while s.ring.len() > s.capacity {
            s.ring.pop_front();
        }
    });
}

/// JSON document for the `/timeseries` endpoint: the most recent `n`
/// windows, oldest first.
pub fn to_json(n: usize) -> String {
    let windows = recent(n);
    let mut out = String::from("{\"windows\":[");
    for (i, w) in windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w.json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Clears the ring, the tick count and the delta baseline.
pub fn reset() {
    with_state(|s| *s = State::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_noop_while_disabled() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::disable();
        assert!(tick("w").is_none());
        assert_eq!(len(), 0);
    }

    #[test]
    fn windows_hold_deltas_not_cumulative_values() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();

        metrics::STATEMENTS_EXECUTED.add(10);
        metrics::histogram_record("ts.cost", 2.0);
        metrics::histogram_record("ts.cost", 100.0);
        let w1 = tick("first").unwrap();
        assert_eq!(w1.index, 1);
        assert_eq!(w1.counter_delta("exec.statements"), Some(10));
        let h1 = w1.histogram("ts.cost").unwrap();
        assert_eq!(h1.count, 2);
        assert!((h1.sum - 102.0).abs() < 1e-9);

        // Second window: only the *new* activity shows up.
        metrics::STATEMENTS_EXECUTED.add(3);
        metrics::histogram_record("ts.cost", 5000.0);
        let w2 = tick("second").unwrap();
        assert_eq!(w2.index, 2);
        assert_eq!(w2.counter_delta("exec.statements"), Some(3));
        let h2 = w2.histogram("ts.cost").unwrap();
        assert_eq!(h2.count, 1);
        assert!((h2.sum - 5000.0).abs() < 1e-9);
        // All mass in one bucket → every quantile lands in (2048, 8192].
        assert!(h2.p50 > 2048.0 && h2.p50 <= 8192.0, "p50 = {}", h2.p50);
        assert!(h2.p99 >= h2.p50);

        // A quiet window omits the idle instruments entirely.
        let w3 = tick("third").unwrap();
        assert_eq!(w3.counter_delta("exec.statements"), None);
        assert!(w3.histogram("ts.cost").is_none());

        assert_eq!(metrics::TIMESERIES_WINDOWS.get(), 3);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_indices() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        set_capacity(3);
        for _ in 0..5 {
            metrics::ROWS_READ.incr();
            tick("w");
        }
        let windows = recent(10);
        assert_eq!(windows.len(), 3);
        assert_eq!(
            windows.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(ticks(), 5);
        // recent(n) trims from the old side.
        assert_eq!(recent(1)[0].index, 5);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn json_document_parses_and_matches() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        metrics::PAGES_READ.add(7);
        metrics::histogram_record("ts.lat", 33.0);
        tick("json \"window\"");
        let doc = crate::jsonv::parse(&to_json(8)).expect("timeseries json parses");
        let w = &doc.get("windows").unwrap().as_arr().unwrap()[0];
        assert_eq!(w.get("label").unwrap().as_str(), Some("json \"window\""));
        assert_eq!(
            w.path("counters/exec.pages_read/delta").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            w.path("histograms/ts.lat/count").unwrap().as_f64(),
            Some(1.0)
        );
        crate::disable();
        crate::reset();
    }
}
