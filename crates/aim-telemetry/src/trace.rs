//! Cross-thread trace context and Chrome trace-event export.
//!
//! Span trees are thread-local ([`crate::span`]), so a scoped worker
//! thread's spans used to vanish when the thread joined: the parallel
//! ranking and validation paths showed an empty gap where the workers'
//! time went. This module fixes that with an explicit hand-off:
//!
//! 1. the spawning thread calls [`fork`] to mint a [`TraceContext`];
//! 2. each worker calls [`TraceContext::adopt`] as its *first* action —
//!    the returned guard, on drop (worker exit), drains the worker's
//!    finished span roots into a pending buffer keyed by the context;
//! 3. after joining, the parent calls [`TraceContext::stitch`], which
//!    merges the pending roots — sorted by span name, so the stitched
//!    shape is deterministic regardless of worker timing — into its own
//!    currently open span frame, exactly as if the work had run inline.
//!
//! Independently, [`start_recording`] arms a Chrome `trace_event` recorder:
//! every span close appends a complete (`"ph":"X"`) event with per-thread
//! track IDs, and [`chrome_trace_json`] renders the buffer in the format
//! `chrome://tracing` / Perfetto load directly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::span::ProfileNode;

/// Pending worker profiles kept at most this many roots; beyond it the
/// oldest are evicted (a stitch that never happens must not leak).
const PENDING_CAP: usize = 4096;

/// Recorded Chrome events are capped; past the cap new events are counted
/// as dropped rather than growing without bound.
const EVENT_CAP: usize = 200_000;

static NEXT_CTX: AtomicU64 = AtomicU64::new(1);
static PENDING: Mutex<Vec<(u64, ProfileNode)>> = Mutex::new(Vec::new());

/// A fork point: identifies the spawning thread's position so worker span
/// subtrees can be stitched back in. Cheap to create and `Copy`-free on
/// purpose (stitch once).
#[derive(Debug)]
pub struct TraceContext {
    id: u64,
}

/// Minted by [`TraceContext::adopt`]; its drop ships the worker thread's
/// finished span roots to the fork point.
#[must_use = "hold the adopt guard for the worker's whole body"]
pub struct AdoptGuard {
    ctx_id: u64,
    active: bool,
}

/// Mints a context for a batch of scoped worker threads. Call on the
/// spawning thread before `std::thread::scope`.
pub fn fork() -> TraceContext {
    TraceContext {
        id: NEXT_CTX.fetch_add(1, Ordering::Relaxed),
    }
}

impl TraceContext {
    /// Adopts the context on a worker thread. Must be the worker's first
    /// action: the guard's drop drains *all* finished span roots of the
    /// thread, which is exactly the worker's own work only if the thread
    /// started clean (scoped threads always do).
    pub fn adopt(&self) -> AdoptGuard {
        AdoptGuard {
            ctx_id: self.id,
            active: crate::is_enabled(),
        }
    }

    /// Merges every pending worker profile for this context into the
    /// calling thread's current span frame (or its finished roots when no
    /// span is open). Roots merge in span-name order, so profiles stitched
    /// from racing workers are deterministic. Returns the number of roots
    /// stitched.
    pub fn stitch(&self) -> usize {
        let mut roots: Vec<ProfileNode> = {
            let mut pending = PENDING.lock().unwrap_or_else(|e| e.into_inner());
            let mut mine = Vec::new();
            pending.retain_mut(|(id, node)| {
                if *id == self.id {
                    mine.push(std::mem::take(node));
                    false
                } else {
                    true
                }
            });
            mine
        };
        if roots.is_empty() {
            return 0;
        }
        roots.sort_by(|a, b| a.name.cmp(&b.name));
        let n = roots.len();
        for root in roots {
            crate::span::graft(root);
        }
        crate::metrics::TRACE_SPANS_STITCHED.add(n as u64);
        n
    }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let profile = crate::span::take_profile();
        if profile.children.is_empty() {
            return;
        }
        let mut pending = PENDING.lock().unwrap_or_else(|e| e.into_inner());
        for root in profile.children {
            if pending.len() >= PENDING_CAP {
                pending.remove(0);
            }
            pending.push((self.ctx_id, root));
        }
    }
}

/// Number of worker profiles waiting to be stitched (diagnostics/tests).
pub fn pending_len() -> usize {
    PENDING.lock().unwrap_or_else(|e| e.into_inner()).len()
}

// ------------------------------------------------------- chrome recorder

static RECORDING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Clone)]
struct ChromeEvent {
    name: &'static str,
    /// Microseconds since the recording epoch.
    ts_us: f64,
    dur_us: f64,
    tid: u64,
}

struct Recorder {
    epoch: Instant,
    events: Vec<ChromeEvent>,
    dropped: u64,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

/// Arms the Chrome trace-event recorder: from now on every span close is
/// recorded as a complete event. Clears any previous recording.
pub fn start_recording() {
    let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    *rec = Some(Recorder {
        epoch: Instant::now(),
        events: Vec::new(),
        dropped: 0,
    });
    RECORDING.store(true, Ordering::Relaxed);
}

/// Disarms the recorder, keeping the buffer for [`chrome_trace_json`].
/// Returns the number of events captured.
pub fn stop_recording() -> usize {
    RECORDING.store(false, Ordering::Relaxed);
    RECORDER
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|r| r.events.len())
        .unwrap_or(0)
}

/// True while span closes are being recorded.
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Called by the span layer on every close while recording is armed.
pub(crate) fn record_closed(name: &'static str, start: Instant, dur: Duration) {
    if !RECORDING.load(Ordering::Relaxed) {
        return;
    }
    let tid = TID.try_with(|t| *t).unwrap_or(0);
    let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    let Some(rec) = rec.as_mut() else { return };
    if rec.events.len() >= EVENT_CAP {
        rec.dropped += 1;
        return;
    }
    let ts = start
        .checked_duration_since(rec.epoch)
        .unwrap_or(Duration::ZERO);
    rec.events.push(ChromeEvent {
        name,
        ts_us: ts.as_secs_f64() * 1e6,
        dur_us: dur.as_secs_f64() * 1e6,
        tid,
    });
}

/// Renders the recorded buffer in the Chrome `trace_event` JSON format
/// (object form). Loadable by `chrome://tracing` and Perfetto.
pub fn chrome_trace_json() -> String {
    let rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    if let Some(rec) = rec.as_ref() {
        for (i, e) in rec.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"aim\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                crate::report::json_escape(e.name),
                e.ts_us,
                e.dur_us,
                e.tid
            ));
        }
    }
    let dropped = rec.as_ref().map(|r| r.dropped).unwrap_or(0);
    out.push_str(&format!("],\"aimEventsDropped\":{dropped}}}"));
    out
}

/// Number of events currently buffered.
pub fn events_recorded() -> usize {
    RECORDER
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|r| r.events.len())
        .unwrap_or(0)
}

/// Writes [`chrome_trace_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, chrome_trace_json())
}

/// Disarms the recorder and clears the event buffer and pending worker
/// profiles.
pub fn reset() {
    RECORDING.store(false, Ordering::Relaxed);
    *RECORDER.lock().unwrap_or_else(|e| e.into_inner()) = None;
    PENDING.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn worker_spans_stitch_into_parent_tree() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        {
            let _outer = crate::span("parent_phase");
            let ctx = fork();
            std::thread::scope(|scope| {
                for i in 0..3 {
                    let ctx = &ctx;
                    scope.spawn(move || {
                        let _adopt = ctx.adopt();
                        let _w = crate::span("worker_unit");
                        if i == 0 {
                            let _n = crate::span("nested");
                        }
                    });
                }
            });
            let stitched = ctx.stitch();
            assert_eq!(stitched, 3, "one root per worker before merging");
        }
        crate::disable();
        let p = span::take_profile();
        let unit = p
            .descendant("parent_phase/worker_unit")
            .expect("worker spans merged under the open parent span");
        assert_eq!(unit.count, 3);
        assert_eq!(unit.child("nested").map(|n| n.count), Some(1));
        assert_eq!(pending_len(), 0);
        assert_eq!(crate::metrics::TRACE_SPANS_STITCHED.get(), 3);
        crate::reset();
    }

    #[test]
    fn stitch_without_open_span_lands_in_finished_roots() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        let ctx = fork();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _adopt = ctx.adopt();
                let _w = crate::span("orphan_work");
            });
        });
        assert_eq!(ctx.stitch(), 1);
        crate::disable();
        let p = span::take_profile();
        assert_eq!(p.child("orphan_work").map(|n| n.count), Some(1));
        crate::reset();
    }

    #[test]
    fn adopt_is_inert_while_disabled_and_contexts_do_not_cross() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::disable();
        let ctx = fork();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _adopt = ctx.adopt();
                let _w = crate::span("invisible");
            });
        });
        assert_eq!(ctx.stitch(), 0);
        assert_eq!(pending_len(), 0);

        // Two contexts: each stitch only claims its own workers.
        crate::enable();
        let (a, b) = (fork(), fork());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _adopt = a.adopt();
                let _w = crate::span("a_work");
            });
            scope.spawn(|| {
                let _adopt = b.adopt();
                let _w = crate::span("b_work");
            });
        });
        assert_eq!(a.stitch(), 1);
        assert_eq!(pending_len(), 1, "b's profile still pending");
        assert_eq!(b.stitch(), 1);
        crate::disable();
        let p = span::take_profile();
        assert!(p.child("a_work").is_some() && p.child("b_work").is_some());
        crate::reset();
    }

    #[test]
    fn chrome_recording_captures_span_closes() {
        let _g = crate::tests::lock();
        crate::reset();
        crate::enable();
        start_recording();
        {
            let _a = crate::span("traced_outer");
            let _b = crate::span("traced_inner");
        }
        let n = stop_recording();
        assert_eq!(n, 2, "both spans recorded");
        crate::disable();
        let json = chrome_trace_json();
        let doc = crate::jsonv::parse(&json).expect("chrome trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        // Inner closes first; complete events carry phase X and a tid.
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("traced_inner"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert!(events[0].get("tid").unwrap().as_f64().unwrap() >= 1.0);
        // Disarmed: further closes are not recorded.
        crate::enable();
        {
            let _c = crate::span("after_stop");
        }
        crate::disable();
        assert_eq!(events_recorded(), 2);
        crate::reset();
        assert_eq!(events_recorded(), 0);
        crate::span::reset();
    }
}
