//! Deterministic synthetic data generation.
//!
//! Every generator takes an explicit seed so experiment harnesses are fully
//! reproducible. Column value distributions cover the cases the cost model
//! and AIM's selectivity reasoning care about: uniform, Zipf-skewed, and
//! low-cardinality categorical.

use crate::rng::{Rng, SeedableRng, StdRng};
use aim_storage::Value;

/// A column value distribution.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Sequential 0, 1, 2, ... (for keys).
    Serial,
    /// Uniform integers in `[0, n)`.
    UniformInt(i64),
    /// Zipf-distributed integers in `[0, n)` with exponent `s`.
    Zipf { n: i64, s: f64 },
    /// Uniform floats in `[0, max)`.
    UniformFloat(f64),
    /// One of the given categorical strings, uniformly.
    Categorical(Vec<String>),
    /// Random lowercase string of the given length.
    RandomString(usize),
    /// Foreign key: uniform integers in `[0, parent_rows)`.
    ForeignKey(i64),
}

/// Stateful row generator for one table.
pub struct RowGenerator {
    rng: StdRng,
    distributions: Vec<Distribution>,
    next_serial: i64,
    /// Precomputed Zipf CDF per Zipf column (lazy, keyed by column index).
    zipf_cdfs: Vec<Option<Vec<f64>>>,
}

impl RowGenerator {
    /// Creates a generator producing rows with one value per distribution.
    pub fn new(seed: u64, distributions: Vec<Distribution>) -> Self {
        let zipf_cdfs = distributions
            .iter()
            .map(|d| match d {
                Distribution::Zipf { n, s } => Some(zipf_cdf(*n, *s)),
                _ => None,
            })
            .collect();
        Self {
            rng: StdRng::seed_from_u64(seed),
            distributions,
            next_serial: 0,
            zipf_cdfs,
        }
    }

    /// Generates the next row.
    pub fn next_row(&mut self) -> Vec<Value> {
        let mut row = Vec::with_capacity(self.distributions.len());
        for (i, d) in self.distributions.iter().enumerate() {
            let v = match d {
                Distribution::Serial => {
                    let v = self.next_serial;
                    Value::Int(v)
                }
                Distribution::UniformInt(n) => Value::Int(self.rng.gen_range(0..(*n).max(1))),
                Distribution::Zipf { .. } => {
                    let cdf = self.zipf_cdfs[i].as_ref().expect("precomputed");
                    let u: f64 = self.rng.gen();
                    let idx = cdf.partition_point(|&c| c < u);
                    Value::Int(idx as i64)
                }
                Distribution::UniformFloat(max) => {
                    Value::Float(self.rng.gen_range(0.0..max.max(f64::MIN_POSITIVE)))
                }
                Distribution::Categorical(options) => {
                    let i = self.rng.gen_range(0..options.len());
                    Value::Str(options[i].clone())
                }
                Distribution::RandomString(len) => {
                    let s: String = (0..*len)
                        .map(|_| (b'a' + self.rng.gen_range(0..26u8)) as char)
                        .collect();
                    Value::Str(s)
                }
                Distribution::ForeignKey(parent_rows) => {
                    Value::Int(self.rng.gen_range(0..(*parent_rows).max(1)))
                }
            };
            row.push(v);
        }
        self.next_serial += 1;
        row
    }
}

/// CDF of a Zipf distribution over `{0, .., n-1}` with exponent `s`.
fn zipf_cdf(n: i64, s: f64) -> Vec<f64> {
    let n = n.max(1) as usize;
    let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_sequential() {
        let mut g = RowGenerator::new(1, vec![Distribution::Serial]);
        assert_eq!(g.next_row(), vec![Value::Int(0)]);
        assert_eq!(g.next_row(), vec![Value::Int(1)]);
        assert_eq!(g.next_row(), vec![Value::Int(2)]);
    }

    #[test]
    fn same_seed_same_stream() {
        let dists = vec![
            Distribution::UniformInt(100),
            Distribution::RandomString(8),
            Distribution::Zipf { n: 50, s: 1.1 },
        ];
        let mut a = RowGenerator::new(42, dists.clone());
        let mut b = RowGenerator::new(42, dists);
        for _ in 0..20 {
            assert_eq!(a.next_row(), b.next_row());
        }
    }

    #[test]
    fn uniform_int_in_range() {
        let mut g = RowGenerator::new(7, vec![Distribution::UniformInt(10)]);
        for _ in 0..200 {
            match g.next_row()[0] {
                Value::Int(v) => assert!((0..10).contains(&v)),
                ref other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut g = RowGenerator::new(3, vec![Distribution::Zipf { n: 100, s: 1.3 }]);
        let mut zero_count = 0;
        let mut tail_count = 0;
        for _ in 0..2000 {
            match g.next_row()[0] {
                Value::Int(0) => zero_count += 1,
                Value::Int(v) if v >= 50 => tail_count += 1,
                _ => {}
            }
        }
        assert!(
            zero_count > 5 * tail_count.max(1) / 2,
            "zipf head {zero_count} vs tail {tail_count}"
        );
    }

    #[test]
    fn categorical_picks_from_options() {
        let opts = vec!["x".to_string(), "y".to_string()];
        let mut g = RowGenerator::new(5, vec![Distribution::Categorical(opts.clone())]);
        for _ in 0..50 {
            match &g.next_row()[0] {
                Value::Str(s) => assert!(opts.contains(s)),
                other => panic!("{other:?}"),
            }
        }
    }
}
