//! Zipf-skewed tenant fleets for fleet-scale tuning benchmarks.
//!
//! Real fleets are skewed: a handful of tenants hold most of the data and
//! serve most of the traffic, while a long tail is nearly idle. This
//! generator builds N tenants over a shared `events` schema whose row
//! counts *and* per-query execution counts follow a Zipf law with
//! exponent `s` — tenant rank `r` gets `base_rows / (r+1)^s` rows — the
//! shape where fleet-level budget allocation visibly beats a uniform
//! per-shard split (hot tenants can absorb far more budget than their
//! uniform share buys).
//!
//! Hot tenants (the leading ranks) additionally run a wider composite
//! query, so their tuning passes discover wide partial orders that
//! cross-shard seeding can hand to the tail. Every 7th tenant carries a
//! [`ShardingProfile`] to exercise per-tenant sharding economics inside a
//! fleet run.

use crate::rng::{Rng, SeedableRng, StdRng};
use aim_core::fleet::Tenant;
use aim_core::sharding::ShardingProfile;
use aim_core::WeightedQuery;
use aim_exec::Engine;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

/// Parameters of a generated fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of tenants.
    pub tenants: usize,
    /// Zipf exponent for tenant sizes and traffic (`1.0` ≈ classic skew;
    /// larger = steeper head).
    pub zipf_s: f64,
    /// PRNG seed; the same spec generates the same fleet bit-for-bit.
    pub seed: u64,
    /// Rows for the rank-0 (hottest) tenant.
    pub base_rows: i64,
    /// Row floor for tail tenants.
    pub min_rows: i64,
    /// Executions per query shape on the rank-0 tenant; scaled down the
    /// ranks by the same Zipf weight.
    pub executions_hot: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            tenants: 16,
            zipf_s: 1.0,
            seed: 42,
            base_rows: 4000,
            min_rows: 60,
            executions_hot: 12,
        }
    }
}

/// One generated tenant plus the weighted query set evaluating it.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// The tenant (database + populated monitor + optional profile),
    /// ready for [`FleetSession::run`](aim_core::fleet::FleetSession::run).
    pub tenant: Tenant,
    /// The tenant's SELECT shapes with their execution weights — input to
    /// [`workload_cost`](aim_core::advisor::workload_cost) when scoring a
    /// tuning outcome.
    pub weighted: Vec<WeightedQuery>,
    /// Rows in the tenant's `events` table.
    pub rows: i64,
}

/// Generates the fleet: every tenant's database is populated, its queries
/// are actually executed, and its monitor holds the observed window.
pub fn generate_fleet(spec: &FleetSpec) -> Vec<TenantWorkload> {
    let engine = Engine::new();
    let mut out = Vec::with_capacity(spec.tenants);
    for rank in 0..spec.tenants {
        let weight = 1.0 / ((rank + 1) as f64).powf(spec.zipf_s);
        let rows = ((spec.base_rows as f64 * weight) as i64).max(spec.min_rows);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
        let db = tenant_db(rows, &mut rng);
        let mut tenant = Tenant::new(format!("tenant-{rank:04}"), db);
        if rank % 7 == 6 {
            tenant = tenant.with_profile(ShardingProfile::new(2).with_default_hit_fraction(0.75));
        }

        let executions = ((spec.executions_hot as f64 * weight).round() as usize).max(2);
        let hot = rank < (spec.tenants / 4).max(1);
        let user = rng.gen_range(0..user_ndv(rows));
        let kind = rng.gen_range(0..8i64);
        let region = rng.gen_range(0..12i64);
        let mut shapes: Vec<String> = vec![
            format!("SELECT id FROM events WHERE user_id = {user}"),
            format!("SELECT id FROM events WHERE kind = {kind} AND region = {region}"),
        ];
        if hot {
            // The head of the fleet also runs the wide composite shape —
            // the source of the partial orders seeded into the tail.
            shapes.push(format!(
                "SELECT id, amount FROM events WHERE user_id = {user} AND kind = {kind}"
            ));
        }
        shapes.push(format!(
            "UPDATE events SET amount = {} WHERE id = {}",
            rng.gen_range(0..1000i64),
            rng.gen_range(0..rows),
        ));

        let mut weighted = Vec::new();
        for sql in &shapes {
            let stmt = parse_statement(sql).expect("generated SQL parses");
            for _ in 0..executions {
                let res = engine
                    .execute(&mut tenant.db, &stmt)
                    .expect("generated SQL executes");
                tenant.monitor.record(&stmt, &res);
            }
            if !stmt.is_dml() {
                weighted.push(WeightedQuery::new(stmt, executions as f64));
            }
        }
        out.push(TenantWorkload {
            tenant,
            weighted,
            rows,
        });
    }
    out
}

/// Distinct `user_id` values for a tenant of `rows` rows: enough that a
/// point lookup is selective (and an index on it worth building).
fn user_ndv(rows: i64) -> i64 {
    (rows / 20).max(10)
}

/// One tenant's `events` table, populated and analyzed.
fn tenant_db(rows: i64, rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("user_id", ColumnType::Int),
                ColumnDef::new("kind", ColumnType::Int),
                ColumnDef::new("region", ColumnType::Int),
                ColumnDef::new("amount", ColumnType::Int),
            ],
            &["id"],
        )
        .expect("valid schema"),
    )
    .expect("fresh database");
    let ndv = user_ndv(rows);
    let mut io = IoStats::new();
    for i in 0..rows {
        db.table_mut("events")
            .unwrap()
            .insert(
                vec![
                    Value::Int(i),
                    Value::Int(rng.gen_range(0..ndv)),
                    Value::Int(i % 8),
                    Value::Int(i % 12),
                    Value::Int(rng.gen_range(0..1000i64)),
                ],
                &mut io,
            )
            .expect("insert");
    }
    db.analyze_all();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sizes_follow_zipf() {
        let spec = FleetSpec {
            tenants: 8,
            ..FleetSpec::default()
        };
        let fleet = generate_fleet(&spec);
        assert_eq!(fleet.len(), 8);
        assert_eq!(fleet[0].rows, spec.base_rows);
        for w in fleet.windows(2) {
            assert!(w[0].rows >= w[1].rows, "sizes must be non-increasing");
        }
        assert!(fleet[7].rows < fleet[0].rows / 4);
    }

    #[test]
    fn tenants_have_observed_windows_and_weighted_queries() {
        let fleet = generate_fleet(&FleetSpec {
            tenants: 9,
            ..FleetSpec::default()
        });
        for t in &fleet {
            assert!(!t.tenant.monitor.is_empty(), "{} saw traffic", t.tenant.id);
            assert!(!t.weighted.is_empty());
            // DML is observed (for maintenance costing) but not scored.
            assert!(t.weighted.iter().all(|q| !q.statement.is_dml()));
        }
        // Hot head runs the wide composite; the tail doesn't.
        assert!(fleet[0].tenant.monitor.len() > fleet[8].tenant.monitor.len());
        // Every 7th tenant is sharded.
        assert!(fleet[6].tenant.profile.is_some());
        assert!(fleet[0].tenant.profile.is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FleetSpec {
            tenants: 3,
            ..FleetSpec::default()
        };
        let a = generate_fleet(&spec);
        let b = generate_fleet(&spec);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.tenant.monitor.len(), y.tenant.monitor.len());
            assert!((x.tenant.monitor.total_cpu() - y.tenant.monitor.total_cpu()).abs() < 1e-9);
        }
    }
}
