//! JOB-like (Join Order Benchmark) workload.
//!
//! Figure 4c/4d evaluates advisors on JOB, whose defining property is many
//! complex joins over an IMDB-shaped schema with skewed, correlated
//! dimension filters. This module builds an IMDB-like star/snowflake schema
//! (title at the centre, satellite fact tables, small dimension tables) and
//! ~30 join queries of 3–7 tables with selective dimension predicates —
//! preserving the join-graph complexity that stresses width-limited
//! advisors.

use crate::datagen::{Distribution, RowGenerator};
use aim_core::WeightedQuery;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema};
use crate::rng::{Rng, SeedableRng, StdRng};

/// JOB generator configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Row count of the central `title` table; satellites scale from it.
    pub titles: i64,
    pub seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            titles: 4000,
            seed: 0x10B,
        }
    }
}

const COUNTRY_CODES: &[&str] = &["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[it]", "[ca]"];
const COMPANY_TYPES: i64 = 4;
const INFO_TYPES: i64 = 40;
const KINDS: i64 = 7;
const ROLES: i64 = 12;
const KEYWORDS: i64 = 500;

/// Builds and populates the IMDB-like database, with statistics analyzed.
pub fn build_database(cfg: &JobConfig) -> Database {
    let mut db = Database::new();
    use ColumnType::*;
    let mk = |name: &str, cols: Vec<(&str, ColumnType)>| {
        TableSchema::new(
            name,
            cols.into_iter()
                .map(|(c, t)| ColumnDef::new(c, t))
                .collect(),
            &["id"],
        )
        .expect("valid schema")
    };

    db.create_table(mk(
        "title",
        vec![
            ("id", Int),
            ("kind_id", Int),
            ("production_year", Int),
            ("title", Str),
            ("episode_nr", Int),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "movie_companies",
        vec![
            ("id", Int),
            ("movie_id", Int),
            ("company_id", Int),
            ("company_type_id", Int),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "company_name",
        vec![("id", Int), ("name", Str), ("country_code", Str)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "cast_info",
        vec![
            ("id", Int),
            ("movie_id", Int),
            ("person_id", Int),
            ("role_id", Int),
            ("nr_order", Int),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "name",
        vec![("id", Int), ("name", Str), ("gender", Str)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "movie_info",
        vec![
            ("id", Int),
            ("movie_id", Int),
            ("info_type_id", Int),
            ("info", Str),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "movie_keyword",
        vec![("id", Int), ("movie_id", Int), ("keyword_id", Int)],
    ))
    .expect("fresh db");
    db.create_table(mk("keyword", vec![("id", Int), ("keyword", Str)]))
        .expect("fresh db");
    db.create_table(mk("kind_type", vec![("id", Int), ("kind", Str)]))
        .expect("fresh db");
    db.create_table(mk("info_type", vec![("id", Int), ("info", Str)]))
        .expect("fresh db");
    db.create_table(mk("role_type", vec![("id", Int), ("role", Str)]))
        .expect("fresh db");

    let n = cfg.titles;
    let fill = |db: &mut Database, table: &str, count: i64, dists: Vec<Distribution>, seed: u64| {
        let mut g = RowGenerator::new(seed, dists);
        let mut io = IoStats::new();
        for _ in 0..count {
            db.table_mut(table)
                .expect("exists")
                .insert(g.next_row(), &mut io)
                .expect("serial keys");
        }
    };

    fill(
        &mut db,
        "title",
        n,
        vec![
            Distribution::Serial,
            Distribution::UniformInt(KINDS),
            Distribution::UniformInt(130), // production_year offset from 1890
            Distribution::RandomString(18),
            Distribution::UniformInt(50),
        ],
        cfg.seed ^ 1,
    );
    let companies = (n / 8).max(20);
    fill(
        &mut db,
        "company_name",
        companies,
        vec![
            Distribution::Serial,
            Distribution::RandomString(14),
            Distribution::Categorical(COUNTRY_CODES.iter().map(|s| s.to_string()).collect()),
        ],
        cfg.seed ^ 2,
    );
    fill(
        &mut db,
        "movie_companies",
        n * 2,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(n),
            Distribution::ForeignKey(companies),
            Distribution::UniformInt(COMPANY_TYPES),
        ],
        cfg.seed ^ 3,
    );
    let people = (n / 2).max(50);
    fill(
        &mut db,
        "name",
        people,
        vec![
            Distribution::Serial,
            Distribution::RandomString(12),
            Distribution::Categorical(vec!["m".into(), "f".into()]),
        ],
        cfg.seed ^ 4,
    );
    fill(
        &mut db,
        "cast_info",
        n * 6,
        vec![
            Distribution::Serial,
            Distribution::Zipf { n, s: 1.05 },
            Distribution::ForeignKey(people),
            Distribution::UniformInt(ROLES),
            Distribution::UniformInt(100),
        ],
        cfg.seed ^ 5,
    );
    fill(
        &mut db,
        "movie_info",
        n * 3,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(n),
            Distribution::Zipf {
                n: INFO_TYPES,
                s: 1.2,
            },
            Distribution::RandomString(10),
        ],
        cfg.seed ^ 6,
    );
    fill(
        &mut db,
        "movie_keyword",
        n * 3,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(n),
            Distribution::Zipf {
                n: KEYWORDS,
                s: 1.1,
            },
        ],
        cfg.seed ^ 7,
    );
    fill(
        &mut db,
        "keyword",
        KEYWORDS,
        vec![Distribution::Serial, Distribution::RandomString(10)],
        cfg.seed ^ 8,
    );
    for (table, count, col) in [
        ("kind_type", KINDS, "kind"),
        ("info_type", INFO_TYPES, "info"),
        ("role_type", ROLES, "role"),
    ] {
        let mut io = IoStats::new();
        for i in 0..count {
            db.table_mut(table)
                .expect("exists")
                .insert(
                    vec![
                        aim_storage::Value::Int(i),
                        aim_storage::Value::Str(format!("{col}{i}")),
                    ],
                    &mut io,
                )
                .expect("serial keys");
        }
    }

    db.analyze_all();
    db
}

/// Generates ~30 JOB-style join queries (label, SQL).
pub fn query_texts(seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(String, String)> = Vec::new();

    // 1a-style: production company by country, recent titles.
    for (i, cc) in COUNTRY_CODES.iter().take(5).enumerate() {
        let y = rng.gen_range(80..125i64);
        out.push((format!("1{}", (b'a' + i as u8) as char), format!(
            "SELECT t.title FROM title t, movie_companies mc, company_name cn \
             WHERE t.id = mc.movie_id AND mc.company_id = cn.id \
             AND cn.country_code = '{cc}' AND t.production_year > {y} \
             AND mc.company_type_id = {ct} ORDER BY t.title LIMIT 25",
            ct = i as i64 % COMPANY_TYPES
        )));
    }
    // 2a-style: keyword-driven.
    for i in 0..5 {
        let kw = rng.gen_range(0..30); // hot keywords (zipf head)
        let y = rng.gen_range(60..105i64);
        out.push((format!("2{}", (b'a' + i as u8) as char), format!(
            "SELECT t.title FROM title t, movie_keyword mk, keyword k \
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.id = {kw} \
             AND t.production_year BETWEEN {y} AND {e} ORDER BY t.title LIMIT 25",
            e = y + 20
        )));
    }
    // 3a-style: info + kind filters, 4-way.
    for i in 0..5 {
        let it = rng.gen_range(0..INFO_TYPES);
        let kind = rng.gen_range(0..KINDS);
        out.push((format!("3{}", (b'a' + i as u8) as char), format!(
            "SELECT t.title, mi.info FROM title t, movie_info mi, info_type it, kind_type kt \
             WHERE t.id = mi.movie_id AND mi.info_type_id = it.id AND t.kind_id = kt.id \
             AND it.id = {it} AND kt.id = {kind} ORDER BY t.title LIMIT 25"
        )));
    }
    // 4a-style: cast + role + gender, 5-way.
    for i in 0..5 {
        let role = rng.gen_range(0..ROLES);
        let y = rng.gen_range(70..125i64);
        let g = if i % 2 == 0 { "f" } else { "m" };
        out.push((format!("4{}", (b'a' + i as u8) as char), format!(
            "SELECT n.name, t.title FROM title t, cast_info ci, name n, role_type rt \
             WHERE t.id = ci.movie_id AND ci.person_id = n.id AND ci.role_id = rt.id \
             AND rt.id = {role} AND n.gender = '{g}' AND t.production_year > {y} \
             ORDER BY n.name LIMIT 25"
        )));
    }
    // 5a-style: company + keyword + info, 6-way.
    for i in 0..5 {
        let cc = COUNTRY_CODES[rng.gen_range(0..COUNTRY_CODES.len())];
        let it = rng.gen_range(0..INFO_TYPES);
        let kw = rng.gen_range(0..50);
        out.push((format!("5{}", (b'a' + i as u8) as char), format!(
            "SELECT t.title FROM title t, movie_companies mc, company_name cn, \
             movie_info mi, info_type it, movie_keyword mk \
             WHERE t.id = mc.movie_id AND mc.company_id = cn.id AND t.id = mi.movie_id \
             AND mi.info_type_id = it.id AND t.id = mk.movie_id \
             AND cn.country_code = '{cc}' AND it.id = {it} AND mk.keyword_id = {kw} \
             ORDER BY t.title LIMIT 25"
        )));
    }
    // 6a-style: full 7-way.
    for i in 0..5 {
        let role = rng.gen_range(0..ROLES);
        let kw = rng.gen_range(0..50);
        let y = rng.gen_range(50..125i64);
        out.push((format!("6{}", (b'a' + i as u8) as char), format!(
            "SELECT n.name, t.title FROM title t, cast_info ci, name n, role_type rt, \
             movie_keyword mk, keyword k, kind_type kt \
             WHERE t.id = ci.movie_id AND ci.person_id = n.id AND ci.role_id = rt.id \
             AND t.id = mk.movie_id AND mk.keyword_id = k.id AND t.kind_id = kt.id \
             AND rt.id = {role} AND k.id = {kw} AND t.production_year > {y} \
             ORDER BY n.name LIMIT 25"
        )));
    }
    out
}

/// Parses the JOB queries into a weighted workload (weight 1 each).
pub fn weighted_workload(seed: u64) -> Vec<WeightedQuery> {
    query_texts(seed)
        .into_iter()
        .map(|(label, sql)| {
            let stmt = parse_statement(&sql)
                .unwrap_or_else(|e| panic!("{label} fails to parse: {e}\n{sql}"));
            WeightedQuery::new(stmt, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;

    #[test]
    fn all_queries_parse() {
        let w = weighted_workload(11);
        assert_eq!(w.len(), 30);
    }

    #[test]
    fn database_builds_and_executes_a_join() {
        let cfg = JobConfig {
            titles: 300,
            seed: 3,
        };
        let mut db = build_database(&cfg);
        assert_eq!(db.table("title").unwrap().row_count(), 300);
        let engine = Engine::new();
        let (_, sql) = query_texts(11).into_iter().next().unwrap();
        let out = engine
            .execute(&mut db, &parse_statement(&sql).unwrap())
            .unwrap();
        assert!(out.io.rows_read > 0);
    }

    #[test]
    fn join_fanout_varies_from_3_to_7() {
        let texts = query_texts(11);
        let tables = |sql: &str| match parse_statement(sql).unwrap() {
            aim_sql::Statement::Select(s) => s.from.len(),
            _ => 0,
        };
        let min = texts.iter().map(|(_, s)| tables(s)).min().unwrap();
        let max = texts.iter().map(|(_, s)| tables(s)).max().unwrap();
        assert_eq!(min, 3);
        assert_eq!(max, 7);
    }
}
