//! Join-heavy transactional workload for the join-parameter experiment
//! (Figure 6 of the paper).
//!
//! §VI-C's argument is built into the data: filter columns have low
//! individual selectivity (NDV ≈ 5) but high *joint* selectivity, so "any
//! combination of two sub-predicates is not selective enough but a
//! combination of all three is highly selective" — a configuration a
//! one-column-at-a-time greedy search cannot reach. The join topology is a
//! chain/star around the `child` fact table:
//!
//! ```text
//! grand ← parent ← child → dim_d
//!                        → dim_e
//! ```
//!
//! so `parent` joins two tables (needs j ≥ 2 for exhaustive join-order
//! candidates) and `child` joins up to three (j = 3), giving each value of
//! the join parameter a distinct slice of the workload to unlock.

use crate::datagen::{Distribution, RowGenerator};
use crate::replay::QuerySpec;
use aim_core::WeightedQuery;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema};
use crate::rng::{Rng, SeedableRng, StdRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct JoinHeavyConfig {
    pub child_rows: i64,
    pub parent_rows: i64,
    pub grand_rows: i64,
    pub dim_rows: i64,
    pub seed: u64,
}

impl Default for JoinHeavyConfig {
    fn default() -> Self {
        Self {
            child_rows: 12_000,
            parent_rows: 1_500,
            grand_rows: 200,
            dim_rows: 300,
            seed: 0xF16,
        }
    }
}

/// Low-NDV filter columns: individually unselective, jointly selective.
const FILTER_NDV: i64 = 5;

/// Builds and populates the chain/star database, statistics analyzed.
pub fn build_database(cfg: &JoinHeavyConfig) -> Database {
    let mut db = Database::new();
    use ColumnType::*;
    let mk = |name: &str, cols: Vec<(&str, ColumnType)>| {
        TableSchema::new(
            name,
            cols.into_iter()
                .map(|(c, t)| ColumnDef::new(c, t))
                .collect(),
            &["id"],
        )
        .expect("valid schema")
    };
    db.create_table(mk(
        "grand",
        vec![("id", Int), ("g1", Int), ("gval", Float)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "parent",
        vec![
            ("id", Int),
            ("fk_g", Int),
            ("p1", Int),
            ("p2", Int),
            ("pval", Float),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "dim_d",
        vec![("id", Int), ("d1", Int), ("dval", Float)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "dim_e",
        vec![("id", Int), ("e1", Int), ("eval", Float)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "child",
        vec![
            ("id", Int),
            ("fk_p", Int),
            ("fk_d", Int),
            ("fk_e", Int),
            ("a", Int),
            ("b", Int),
            ("cc", Int),
            ("val", Float),
        ],
    ))
    .expect("fresh db");

    let fill = |db: &mut Database, table: &str, n: i64, dists: Vec<Distribution>, seed: u64| {
        let mut g = RowGenerator::new(seed, dists);
        let mut io = IoStats::new();
        for _ in 0..n {
            db.table_mut(table)
                .expect("exists")
                .insert(g.next_row(), &mut io)
                .expect("serial keys");
        }
    };
    fill(
        &mut db,
        "grand",
        cfg.grand_rows,
        vec![
            Distribution::Serial,
            Distribution::UniformInt(50),
            Distribution::UniformFloat(100.0),
        ],
        cfg.seed ^ 1,
    );
    fill(
        &mut db,
        "parent",
        cfg.parent_rows,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(cfg.grand_rows),
            Distribution::UniformInt(FILTER_NDV),
            Distribution::UniformInt(FILTER_NDV),
            Distribution::UniformFloat(100.0),
        ],
        cfg.seed ^ 2,
    );
    for (t, s) in [("dim_d", 3u64), ("dim_e", 4)] {
        fill(
            &mut db,
            t,
            cfg.dim_rows,
            vec![
                Distribution::Serial,
                Distribution::UniformInt(30),
                Distribution::UniformFloat(100.0),
            ],
            cfg.seed ^ s,
        );
    }
    fill(
        &mut db,
        "child",
        cfg.child_rows,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(cfg.parent_rows),
            Distribution::ForeignKey(cfg.dim_rows),
            Distribution::ForeignKey(cfg.dim_rows),
            Distribution::UniformInt(FILTER_NDV),
            Distribution::UniformInt(FILTER_NDV),
            Distribution::UniformInt(FILTER_NDV),
            Distribution::UniformFloat(100.0),
        ],
        cfg.seed ^ 5,
    );
    db.analyze_all();
    db
}

/// Number of parameter variants per query shape.
const VARIANTS: usize = 6;

/// The workload mix. Weights reflect a transactional system: the greedy
/// trap and the 2-/3-way joins dominate; the 4-way is a minor report.
pub fn specs(seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = |template: &dyn Fn(&mut StdRng) -> String| -> Vec<aim_sql::Statement> {
        (0..VARIANTS)
            .map(|_| parse_statement(&template(&mut rng)).expect("generated SQL"))
            .collect()
    };
    let f = FILTER_NDV;
    vec![
        // Q1 — the greedy trap: three jointly selective sub-predicates.
        QuerySpec::new(
            "triple_filter",
            6.0,
            v(&|r: &mut StdRng| {
                format!(
                    "SELECT id, val FROM child WHERE a = {} AND b = {} AND cc = {}",
                    r.gen_range(0..f),
                    r.gen_range(0..f),
                    r.gen_range(0..f)
                )
            }),
        ),
        // Q2 — 2-way join: parent filter drives, child probed (j = 1).
        QuerySpec::new(
            "two_way",
            5.0,
            v(&|r: &mut StdRng| {
                format!(
                    "SELECT c.id, p.pval FROM child c, parent p \
                     WHERE c.fk_p = p.id AND p.p1 = {} AND p.p2 = {} AND c.a = {}",
                    r.gen_range(0..f),
                    r.gen_range(0..f),
                    r.gen_range(0..f)
                )
            }),
        ),
        // Q3 — 3-way chain: grand filter → parent (joins 2 tables: j = 2)
        // → child.
        QuerySpec::new(
            "chain_three",
            5.0,
            v(&|r: &mut StdRng| {
                format!(
                    "SELECT c.id, g.gval FROM grand g, parent p, child c \
                     WHERE g.id = p.fk_g AND p.id = c.fk_p AND g.g1 = {} \
                     AND c.a = {} AND c.b = {}",
                    r.gen_range(0..50),
                    r.gen_range(0..f),
                    r.gen_range(0..f)
                )
            }),
        ),
        // Q4 — star: child joins parent + dim_d (child joins 2: j = 2).
        QuerySpec::new(
            "star_three",
            4.0,
            v(&|r: &mut StdRng| {
                format!(
                    "SELECT c.id, d.dval FROM child c, parent p, dim_d d \
                     WHERE c.fk_p = p.id AND c.fk_d = d.id AND d.d1 = {} AND p.p1 = {} \
                     AND c.b = {}",
                    r.gen_range(0..30),
                    r.gen_range(0..f),
                    r.gen_range(0..f)
                )
            }),
        ),
        // Q5 — 4-way star: child joins 3 tables (j = 3), low weight.
        QuerySpec::new(
            "star_four",
            1.0,
            v(&|r: &mut StdRng| {
                format!(
                    "SELECT c.id FROM child c, parent p, dim_d d, dim_e e \
                     WHERE c.fk_p = p.id AND c.fk_d = d.id AND c.fk_e = e.id \
                     AND d.d1 = {} AND e.e1 = {} AND p.p2 = {}",
                    r.gen_range(0..30),
                    r.gen_range(0..30),
                    r.gen_range(0..f)
                )
            }),
        ),
        // DML — keeps maintenance costs visible.
        QuerySpec::new(
            "touch_child",
            2.0,
            v(&|r: &mut StdRng| {
                format!(
                    "UPDATE child SET val = {} WHERE id = {}",
                    r.gen_range(0..100),
                    r.gen_range(0..12_000)
                )
            }),
        ),
    ]
}

/// The same workload as a weighted advisor input.
pub fn weighted(seed: u64) -> Vec<WeightedQuery> {
    specs(seed)
        .into_iter()
        .flat_map(|s| {
            let w = s.weight / s.variants.len() as f64;
            s.variants
                .into_iter()
                .map(move |stmt| WeightedQuery::new(stmt, w))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;

    #[test]
    fn database_and_specs_build() {
        let cfg = JoinHeavyConfig {
            child_rows: 1000,
            parent_rows: 200,
            grand_rows: 40,
            dim_rows: 50,
            seed: 1,
        };
        let mut db = build_database(&cfg);
        assert_eq!(db.table("child").unwrap().row_count(), 1000);
        let specs = specs(3);
        assert_eq!(specs.len(), 6);
        let engine = Engine::new();
        for s in &specs {
            for v in &s.variants {
                // UPDATE ids range over the default child count; tolerate
                // misses on the scaled-down fixture.
                let _ = engine.execute(&mut db, v);
            }
        }
    }

    #[test]
    fn triple_filter_is_a_greedy_trap() {
        // A single filter column matches ~20% of rows: a non-covering
        // single-column index must lose to a scan, while the 3-column
        // composite wins outright.
        let cfg = JoinHeavyConfig::default();
        let db = build_database(&cfg);
        let w = vec![WeightedQuery::new(
            parse_statement("SELECT id, val FROM child WHERE a = 1 AND b = 2 AND cc = 3")
                .unwrap(),
            1.0,
        )];
        use aim_core::{defs_to_config, workload_cost};
        use aim_exec::{CostModel, HypoConfig};
        use aim_storage::IndexDef;
        let cm = CostModel::default();
        let base = workload_cost(&db, &w, &HypoConfig::only(vec![]), &cm);
        let single = workload_cost(
            &db,
            &w,
            &defs_to_config(&db, &[IndexDef::new("s", "child", vec!["a".into()])]),
            &cm,
        );
        let triple = workload_cost(
            &db,
            &w,
            &defs_to_config(
                &db,
                &[IndexDef::new(
                    "t3",
                    "child",
                    vec!["a".into(), "b".into(), "cc".into()],
                )],
            ),
            &cm,
        );
        assert!(single >= base * 0.999, "single must not help: {single} vs {base}");
        // Non-covering (val is fetched), so lookups dominate: a ~40%
        // cut; the covering variant does far better still.
        assert!(triple < base * 0.7, "triple must help: {triple} vs {base}");
        let covering = workload_cost(
            &db,
            &w,
            &defs_to_config(
                &db,
                &[IndexDef::new(
                    "t4",
                    "child",
                    vec!["a".into(), "b".into(), "cc".into(), "val".into()],
                )],
            ),
            &cm,
        );
        assert!(covering < base * 0.1, "covering: {covering} vs {base}");
    }

    #[test]
    fn weighted_workload_flattens_variants() {
        let w = weighted(3);
        assert_eq!(w.len(), 6 * VARIANTS);
    }
}
