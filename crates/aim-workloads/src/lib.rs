//! Workload and data generators for the AIM reproduction.
//!
//! * [`datagen`] — deterministic row generators (uniform, Zipf,
//!   categorical, foreign-key).
//! * [`fleet`] — Zipf-skewed tenant fleets (sizes *and* traffic follow the
//!   skew) for fleet-scale tuning benchmarks.
//! * [`tpch`] — scaled-down TPC-H-like schema and the 22 query shapes
//!   (Figures 4a/4b and 5).
//! * [`tpcds`] — TPC-DS-like snowflake with two sales channels (the
//!   paper's third benchmark).
//! * [`job`] — IMDB-like Join Order Benchmark analogue with 3–7-way joins
//!   (Figures 4c/4d).
//! * [`join_heavy`] — the greedy-trap chain/star workload behind the
//!   join-parameter experiment (Figure 6).
//! * [`production`] — synthetic production profiles A–G matching the
//!   metadata of Table II, with a DBA-oracle index set.
//! * [`replay`] — workload replay against a simulated machine capacity,
//!   producing the CPU% / throughput time series of Figures 3 and 6.
//! * [`rng`] — the seeded xoshiro256++ PRNG all generators draw from
//!   (std-only; the workspace builds without external crates).

pub mod datagen;
pub mod fleet;
pub mod job;
pub mod join_heavy;
pub mod production;
pub mod replay;
pub mod rng;
pub mod tpcds;
pub mod tpch;

pub use datagen::{Distribution, RowGenerator};
pub use fleet::{generate_fleet, FleetSpec, TenantWorkload};
pub use production::{profiles, ProductionProfile, ProductionWorkload, WorkloadType};
pub use replay::{QuerySpec, Replayer, TickSample};
