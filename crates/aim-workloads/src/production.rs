//! Synthetic production workload profiles A–G (Table II of the paper).
//!
//! The paper validates AIM against DBA-tuned production databases whose
//! metadata Table II reports: table count, join-query count and read/write
//! mix per product. Those databases are proprietary, so this module builds
//! synthetic equivalents that match the *reported metadata* — same table
//! counts, same join-query counts, same workload type — with deterministic
//! schemas, foreign-key topology and query shapes. A "DBA oracle" derives
//! the manually-tuned index set the way a careful human would: one index
//! per query shape (equality columns by selectivity, then the range
//! column), deduplicated, plus the conventional index-every-foreign-key
//! habit — which is exactly where AIM's merged, pruned configurations
//! diverge and the Jaccard similarity of Table II comes from.

use crate::datagen::{Distribution, RowGenerator};
use crate::replay::QuerySpec;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IndexDef, IoStats, TableSchema};
use crate::rng::{Rng, SeedableRng, StdRng};
use std::collections::BTreeSet;

/// Read/write mix of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadType {
    WriteHeavy,
    ReadHeavy,
    Balanced,
}

impl WorkloadType {
    /// Relative weight of DML specs vs read specs.
    fn dml_weight(self) -> f64 {
        match self {
            WorkloadType::WriteHeavy => 3.0,
            WorkloadType::ReadHeavy => 0.15,
            WorkloadType::Balanced => 1.0,
        }
    }
}

/// One production profile (a row of Table II).
#[derive(Debug, Clone)]
pub struct ProductionProfile {
    pub name: &'static str,
    pub tables: usize,
    pub join_queries: usize,
    pub workload: WorkloadType,
    pub seed: u64,
    /// Rows per table are drawn uniformly from this range.
    pub rows_per_table: (i64, i64),
}

/// The seven profiles with Table II's table / join-query counts.
pub fn profiles() -> Vec<ProductionProfile> {
    let p = |name, tables, join_queries, workload, seed| ProductionProfile {
        name,
        tables,
        join_queries,
        workload,
        seed,
        rows_per_table: (120, 800),
    };
    vec![
        p("Product A", 147, 67, WorkloadType::WriteHeavy, 0xA),
        p("Product B", 184, 733, WorkloadType::ReadHeavy, 0xB),
        p("Product C", 42, 25, WorkloadType::Balanced, 0xC),
        p("Product D", 16, 18, WorkloadType::WriteHeavy, 0xD),
        p("Product E", 51, 41, WorkloadType::ReadHeavy, 0xE),
        p("Product F", 5, 10, WorkloadType::ReadHeavy, 0xF),
        p("Product G", 79, 386, WorkloadType::Balanced, 0x6),
    ]
}

/// A generated production workload: database (no secondary indexes), the
/// DBA oracle index set, and the query mix.
pub struct ProductionWorkload {
    pub db: Database,
    pub dba_indexes: Vec<IndexDef>,
    pub specs: Vec<QuerySpec>,
}

/// Number of parameter variants per query spec.
const VARIANTS: usize = 8;

/// Builds the synthetic database + workload for one profile.
pub fn build(profile: &ProductionProfile) -> ProductionWorkload {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut db = Database::new();

    // ---------------------------------------------------------- schema
    // Each table: id PK, fk -> earlier table, 3-6 int columns with varied
    // NDV, one float, one short string.
    struct TableMeta {
        name: String,
        int_cols: Vec<(String, i64)>, // (name, ndv)
        rows: i64,
        fk_parent: Option<usize>,
    }
    let mut metas: Vec<TableMeta> = Vec::with_capacity(profile.tables);
    for ti in 0..profile.tables {
        let n_ints = rng.gen_range(3..=6);
        let int_cols: Vec<(String, i64)> = (0..n_ints)
            .map(|ci| {
                let ndv = *[2, 5, 10, 50, 200, 1000]
                    .get(rng.gen_range(0..6usize))
                    .expect("in range");
                (format!("c{ci}"), ndv)
            })
            .collect();
        let rows = rng.gen_range(profile.rows_per_table.0..=profile.rows_per_table.1);
        let fk_parent = if ti > 0 && rng.gen_bool(0.8) {
            Some(rng.gen_range(0..ti))
        } else {
            None
        };
        metas.push(TableMeta {
            name: format!("t{ti}"),
            int_cols,
            rows,
            fk_parent,
        });
    }

    for (ti, meta) in metas.iter().enumerate() {
        let mut cols = vec![ColumnDef::new("id", ColumnType::Int)];
        if meta.fk_parent.is_some() {
            cols.push(ColumnDef::new("fk", ColumnType::Int));
        }
        for (c, _) in &meta.int_cols {
            cols.push(ColumnDef::new(c.clone(), ColumnType::Int));
        }
        cols.push(ColumnDef::new("val", ColumnType::Float));
        cols.push(ColumnDef::new("tag", ColumnType::Str));
        db.create_table(TableSchema::new(meta.name.clone(), cols, &["id"]).expect("valid"))
            .expect("fresh db");

        let mut dists = vec![Distribution::Serial];
        if let Some(p) = meta.fk_parent {
            dists.push(Distribution::ForeignKey(metas[p].rows));
        }
        for (_, ndv) in &meta.int_cols {
            dists.push(Distribution::UniformInt(*ndv));
        }
        dists.push(Distribution::UniformFloat(1000.0));
        dists.push(Distribution::RandomString(8));
        let mut g = RowGenerator::new(profile.seed ^ (ti as u64) << 8, dists);
        let mut io = IoStats::new();
        for _ in 0..meta.rows {
            db.table_mut(&meta.name)
                .expect("exists")
                .insert(g.next_row(), &mut io)
                .expect("serial keys");
        }
    }
    db.analyze_all();

    // Measured NDV lookup matching AIM's column-ordering tie-break.
    let measured_ndv = {
        let db_ref = &db;
        move |table: &str, col: &str| -> u64 {
            db_ref
                .stats(table)
                .and_then(|s| s.column(col))
                .map_or(0, |cs| cs.ndv)
        }
    };

    // -------------------------------------------------------- query mix
    let mut specs: Vec<QuerySpec> = Vec::new();
    let mut dba: Vec<IndexDef> = Vec::new();
    let mut dba_keys: BTreeSet<(String, Vec<String>)> = BTreeSet::new();
    let mut push_dba = |table: &str, cols: Vec<String>| {
        if cols.is_empty() {
            return;
        }
        if dba_keys.insert((table.to_string(), cols.clone())) {
            dba.push(IndexDef::new(
                format!("dba_{}_{}", table, cols.join("_")),
                table,
                cols,
            ));
        }
    };

    // Single-table read queries: 2 per table.
    for meta in &metas {
        for qi in 0..2 {
            // 1-2 equality predicates on the more selective columns, an
            // optional range, optional order by.
            let mut by_ndv = meta.int_cols.clone();
            by_ndv.sort_by_key(|(_, ndv)| std::cmp::Reverse(*ndv));
            let n_eq = rng.gen_range(1..=2.min(by_ndv.len()));
            let eq_cols: Vec<String> =
                by_ndv.iter().take(n_eq).map(|(c, _)| c.clone()).collect();
            let range_col = by_ndv.get(n_eq).map(|(c, _)| c.clone());
            let order = qi == 1 && rng.gen_bool(0.4);

            let mut variants = Vec::with_capacity(VARIANTS);
            for _ in 0..VARIANTS {
                let mut preds: Vec<String> = eq_cols
                    .iter()
                    .map(|c| {
                        let ndv = by_ndv.iter().find(|(n, _)| n == c).expect("present").1;
                        format!("{c} = {}", rng.gen_range(0..ndv))
                    })
                    .collect();
                if let Some(rc) = &range_col {
                    let ndv = by_ndv.iter().find(|(n, _)| n == rc).expect("present").1;
                    preds.push(format!("{rc} > {}", rng.gen_range(0..ndv)));
                }
                let mut sql = format!(
                    "SELECT id, val FROM {} WHERE {}",
                    meta.name,
                    preds.join(" AND ")
                );
                if order {
                    sql.push_str(" ORDER BY val DESC LIMIT 20");
                }
                variants.push(parse_statement(&sql).expect("generated SQL"));
            }
            specs.push(QuerySpec::new(
                format!("{}_read{qi}", meta.name),
                rng.gen_range(1.0..6.0),
                variants,
            ));
            // DBA: index the equality columns (most selective first, by
            // the same measured-NDV convention AIM uses) plus the range
            // column.
            let mut cols = eq_cols.clone();
            cols.sort_by_key(|c| {
                (std::cmp::Reverse(measured_ndv(&meta.name, c)), c.clone())
            });
            if let Some(rc) = range_col {
                cols.push(rc);
            }
            push_dba(&meta.name, cols);
        }
    }

    // Join queries: child joins its FK parent, filtered on both sides.
    let fk_children: Vec<usize> = metas
        .iter()
        .enumerate()
        .filter(|(_, m)| m.fk_parent.is_some())
        .map(|(i, _)| i)
        .collect();
    for jq in 0..profile.join_queries {
        if fk_children.is_empty() {
            break;
        }
        let child_idx = fk_children[rng.gen_range(0..fk_children.len())];
        let child = &metas[child_idx];
        let parent = &metas[child.fk_parent.expect("child has parent")];
        let (ccol, cndv) = child.int_cols[rng.gen_range(0..child.int_cols.len())].clone();
        let (pcol, pndv) = parent.int_cols[rng.gen_range(0..parent.int_cols.len())].clone();
        let mut variants = Vec::with_capacity(VARIANTS);
        for _ in 0..VARIANTS {
            let sql = format!(
                "SELECT c.id, p.val FROM {child} c, {parent} p \
                 WHERE c.fk = p.id AND c.{ccol} = {cv} AND p.{pcol} = {pv}",
                child = child.name,
                parent = parent.name,
                cv = rng.gen_range(0..cndv),
                pv = rng.gen_range(0..pndv),
            );
            variants.push(parse_statement(&sql).expect("generated SQL"));
        }
        specs.push(QuerySpec::new(
            format!("join{jq}"),
            rng.gen_range(0.5..3.0),
            variants,
        ));
        // DBA habit: composite (filter column, then join column) on the
        // child — the standard ordering for `WHERE c = ? AND fk = p.id`
        // access, and the one AIM's merging converges to — plus a filter
        // index on the parent.
        push_dba(&child.name, vec![ccol.clone(), "fk".to_string()]);
        push_dba(&parent.name, vec![pcol.clone()]);
    }

    // The index-every-foreign-key habit.
    for meta in &metas {
        if meta.fk_parent.is_some() && rng.gen_bool(0.6) {
            push_dba(&meta.name, vec!["fk".into()]);
        }
    }

    // DML: updates against random tables.
    let dml_weight = profile.workload.dml_weight();
    let n_dml = (profile.tables / 2).max(1);
    for di in 0..n_dml {
        let meta = &metas[rng.gen_range(0..metas.len())];
        let (col, ndv) = meta.int_cols[rng.gen_range(0..meta.int_cols.len())].clone();
        let mut variants = Vec::with_capacity(VARIANTS);
        for _ in 0..VARIANTS {
            let sql = format!(
                "UPDATE {} SET {col} = {} WHERE id = {}",
                meta.name,
                rng.gen_range(0..ndv),
                rng.gen_range(0..meta.rows),
            );
            variants.push(parse_statement(&sql).expect("generated SQL"));
        }
        specs.push(QuerySpec::new(
            format!("dml{di}"),
            dml_weight * rng.gen_range(1.0..4.0),
            variants,
        ));
    }

    // A careful DBA prunes indexes whose columns are a prefix of a wider
    // index on the same table — keep the oracle realistic.
    let pruned: Vec<IndexDef> = dba
        .iter()
        .filter(|a| {
            !dba.iter().any(|b| {
                a.table == b.table
                    && a.name != b.name
                    && b.columns.len() > a.columns.len()
                    && b.columns[..a.columns.len()] == a.columns[..]
            })
        })
        .cloned()
        .collect();

    ProductionWorkload {
        db,
        dba_indexes: pruned,
        specs,
    }
}

/// Materializes the DBA oracle indexes on (a clone of) the database.
pub fn apply_indexes(db: &mut Database, defs: &[IndexDef]) {
    let mut io = IoStats::new();
    for def in defs {
        // Oracle sets may contain columns pruned from a schema variant;
        // skip gracefully.
        let _ = db.create_index(def.clone(), &mut io);
    }
    db.analyze_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table_ii_metadata() {
        let ps = profiles();
        assert_eq!(ps.len(), 7);
        assert_eq!(ps[0].tables, 147);
        assert_eq!(ps[1].join_queries, 733);
        assert_eq!(ps[3].workload, WorkloadType::WriteHeavy);
        assert_eq!(ps[5].tables, 5);
    }

    #[test]
    fn small_profile_builds() {
        let profile = &profiles()[5]; // Product F: 5 tables, 10 joins.
        let w = build(profile);
        assert_eq!(w.db.table_names().len(), 5);
        assert!(!w.specs.is_empty());
        assert!(!w.dba_indexes.is_empty());
        // DBA set applies cleanly.
        let mut db = w.db.clone();
        apply_indexes(&mut db, &w.dba_indexes);
        assert_eq!(db.all_indexes().len(), w.dba_indexes.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = &profiles()[5];
        let a = build(profile);
        let b = build(profile);
        assert_eq!(a.dba_indexes.len(), b.dba_indexes.len());
        assert_eq!(a.specs.len(), b.specs.len());
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.variants.len(), y.variants.len());
        }
    }

    #[test]
    fn write_heavy_has_heavier_dml() {
        let d = build(&profiles()[3]); // D: write heavy
        let f = build(&profiles()[5]); // F: read heavy
        let dml_share = |w: &ProductionWorkload| {
            let dml: f64 = w
                .specs
                .iter()
                .filter(|s| s.label.starts_with("dml"))
                .map(|s| s.weight)
                .sum();
            let total: f64 = w.specs.iter().map(|s| s.weight).sum();
            dml / total
        };
        assert!(dml_share(&d) > 2.0 * dml_share(&f));
    }

    #[test]
    fn replay_works_against_profile() {
        use crate::replay::Replayer;
        let w = build(&profiles()[5]);
        let mut db = w.db.clone();
        let mut r = Replayer::new(w.specs.clone(), 3);
        let sample = r.run_tick(&mut db, None, 30, 1e9);
        assert!(sample.executed > 0);
        assert!(sample.total_cost > 0.0);
    }
}
