//! Workload replay with simulated machine capacity.
//!
//! Figures 3 and 6 of the paper plot CPU% and throughput over time while
//! indexes are dropped and re-created. The replayer models a machine with a
//! fixed cost-unit capacity per tick: each tick executes a batch of queries
//! sampled from the workload mix, and reports
//!
//! * `cpu_pct`  — consumed cost units relative to capacity (capped at 100),
//! * `throughput` — completed queries per tick; when offered load exceeds
//!   capacity, completion degrades proportionally (a saturated machine).

use aim_exec::Engine;
use aim_monitor::WorkloadMonitor;
use aim_sql::ast::Statement;
use aim_storage::Database;
use crate::rng::{Rng, SeedableRng, StdRng};

/// One workload query shape with pre-instantiated parameter variants.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub label: String,
    /// Relative execution frequency.
    pub weight: f64,
    /// Concrete instantiations cycled through during replay.
    pub variants: Vec<Statement>,
}

impl QuerySpec {
    pub fn new(label: impl Into<String>, weight: f64, variants: Vec<Statement>) -> Self {
        Self {
            label: label.into(),
            weight,
            variants,
        }
    }
}

/// One tick's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSample {
    /// Simulated CPU utilisation in percent (0–100).
    pub cpu_pct: f64,
    /// Queries completed this tick.
    pub throughput: f64,
    /// Raw cost units consumed.
    pub total_cost: f64,
    /// Statements executed.
    pub executed: usize,
}

/// Replays a weighted workload mix against a database.
pub struct Replayer {
    specs: Vec<QuerySpec>,
    cumulative: Vec<f64>,
    next_variant: Vec<usize>,
    rng: StdRng,
    pub engine: Engine,
}

impl Replayer {
    /// Builds a replayer over the given specs.
    pub fn new(specs: Vec<QuerySpec>, seed: u64) -> Self {
        let mut cumulative = Vec::with_capacity(specs.len());
        let mut acc = 0.0;
        for s in &specs {
            acc += s.weight.max(0.0);
            cumulative.push(acc);
        }
        let next_variant = vec![0; specs.len()];
        Self {
            specs,
            cumulative,
            next_variant,
            rng: StdRng::seed_from_u64(seed),
            engine: Engine::new(),
        }
    }

    /// Samples the next statement according to the weight mix.
    fn next_statement(&mut self) -> Option<(usize, Statement)> {
        let total = *self.cumulative.last()?;
        if total <= 0.0 {
            return None;
        }
        let x: f64 = self.rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        let idx = idx.min(self.specs.len() - 1);
        let spec = &self.specs[idx];
        if spec.variants.is_empty() {
            return None;
        }
        let v = self.next_variant[idx] % spec.variants.len();
        self.next_variant[idx] += 1;
        Some((idx, spec.variants[v].clone()))
    }

    /// Executes `offered` sampled statements against `db`, recording into
    /// `monitor` when provided. `capacity` is the machine's cost-unit
    /// budget for the tick.
    pub fn run_tick(
        &mut self,
        db: &mut Database,
        monitor: Option<&mut WorkloadMonitor>,
        offered: usize,
        capacity: f64,
    ) -> TickSample {
        let mut total_cost = 0.0;
        let mut executed = 0usize;
        let mut mon = monitor;
        for _ in 0..offered {
            let Some((_, stmt)) = self.next_statement() else {
                break;
            };
            match self.engine.execute(db, &stmt) {
                Ok(out) => {
                    total_cost += out.cost;
                    executed += 1;
                    if let Some(m) = mon.as_deref_mut() {
                        m.record(&stmt, &out);
                    }
                }
                Err(_) => {
                    // Replay errors (e.g. duplicate-key on repeated DML
                    // variants) consume no budget and complete no query.
                }
            }
        }
        let cpu_pct = if capacity > 0.0 {
            (total_cost / capacity * 100.0).min(100.0)
        } else {
            100.0
        };
        // Saturation: past capacity, completions degrade proportionally.
        let throughput = if total_cost <= capacity || total_cost <= 0.0 {
            executed as f64
        } else {
            executed as f64 * (capacity / total_cost)
        };
        TickSample {
            cpu_pct,
            throughput,
            total_cost,
            executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_sql::parse_statement;
    use aim_storage::{ColumnDef, ColumnType, IoStats, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("a", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut io = IoStats::new();
        for i in 0..2000 {
            db.table_mut("t")
                .unwrap()
                .insert(vec![Value::Int(i), Value::Int(i % 20)], &mut io)
                .unwrap();
        }
        db.analyze_all();
        db
    }

    fn spec(label: &str, weight: f64, sqls: &[&str]) -> QuerySpec {
        QuerySpec::new(
            label,
            weight,
            sqls.iter().map(|s| parse_statement(s).unwrap()).collect(),
        )
    }

    #[test]
    fn tick_reports_cpu_and_throughput() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![spec("scan", 1.0, &["SELECT id FROM t WHERE a = 3"])],
            7,
        );
        let sample = r.run_tick(&mut db, None, 10, 1e9);
        assert_eq!(sample.executed, 10);
        assert!(sample.cpu_pct > 0.0);
        assert_eq!(sample.throughput, 10.0);
    }

    #[test]
    fn saturation_caps_cpu_and_degrades_throughput() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![spec("scan", 1.0, &["SELECT id FROM t WHERE a = 3"])],
            7,
        );
        let sample = r.run_tick(&mut db, None, 50, 1.0);
        assert_eq!(sample.cpu_pct, 100.0);
        assert!(sample.throughput < 50.0);
    }

    #[test]
    fn monitor_receives_executions() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![
                spec("scan", 1.0, &["SELECT id FROM t WHERE a = 3"]),
                spec("point", 1.0, &["SELECT a FROM t WHERE id = 1"]),
            ],
            7,
        );
        let mut m = WorkloadMonitor::new();
        r.run_tick(&mut db, Some(&mut m), 40, 1e9);
        assert!(m.len() >= 2);
        let total: u64 = m.queries().map(|q| q.executions).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn weights_steer_the_mix() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![
                spec("hot", 9.0, &["SELECT id FROM t WHERE a = 3"]),
                spec("cold", 1.0, &["SELECT a FROM t WHERE id = 1"]),
            ],
            7,
        );
        let mut m = WorkloadMonitor::new();
        r.run_tick(&mut db, Some(&mut m), 200, 1e9);
        let hot = m
            .queries()
            .find(|q| q.normalized_text.contains("a = ?"))
            .unwrap()
            .executions;
        assert!(hot > 140, "hot executions = {hot}");
    }

    #[test]
    fn variants_cycle() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![spec(
                "scan",
                1.0,
                &[
                    "SELECT id FROM t WHERE a = 1",
                    "SELECT id FROM t WHERE a = 2",
                ],
            )],
            7,
        );
        let mut m = WorkloadMonitor::new();
        r.run_tick(&mut db, Some(&mut m), 10, 1e9);
        // Both variants share one fingerprint; executions accumulate.
        assert_eq!(m.len(), 1);
        assert_eq!(m.queries().next().unwrap().executions, 10);
    }

    #[test]
    fn failed_statements_do_not_count() {
        let mut db = db();
        let mut r = Replayer::new(
            vec![spec(
                "dup",
                1.0,
                &["INSERT INTO t (id, a) VALUES (1, 1)"], // duplicate PK
            )],
            7,
        );
        let sample = r.run_tick(&mut db, None, 5, 1e9);
        assert_eq!(sample.executed, 0);
        assert_eq!(sample.throughput, 0.0);
    }
}
