//! Self-contained pseudo-random number generation for the workload and
//! data generators.
//!
//! The workspace builds offline with no external crates, so this module
//! supplies the small slice of the `rand` API the generators use:
//! [`StdRng`] (xoshiro256++ seeded through SplitMix64), the [`SeedableRng`]
//! and [`Rng`] traits, `gen_range` over integer and float ranges,
//! `gen_bool`, and `gen::<f64>()`. Generators are deterministic per seed,
//! which the replay and figure harnesses rely on.
//!
//! This is a statistical PRNG for synthetic workloads — not a
//! cryptographic one.

use std::ops::{Range, RangeInclusive};

/// Splits a 64-bit seed into well-mixed state words (SplitMix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard PRNG: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Sampling helpers over a raw 64-bit source.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a `Range` or `RangeInclusive`. Panics on an
    /// empty range, like `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the type's standard distribution (`f64`: uniform in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types a range can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` by widening multiply.
fn bounded(bits: u64, span: u128) -> u128 {
    (bits as u128).wrapping_mul(span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Standard distribution of a type, for `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v: usize = rng.gen_range(0..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "uniform over 0..6 missed a value");

        for _ in 0..500 {
            let v = rng.gen_range(3..=6);
            assert!((3..=6).contains(&v));
            let f = rng.gen_range(1.0..6.0);
            assert!((1.0..6.0).contains(&f));
            let n: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
