//! TPC-DS-like analytical benchmark.
//!
//! The paper's §VI-B also ran TPC-DS ("graphs from the TPC-DS benchmark
//! followed the same trend"); §VIII-a notes DTA needed "a really high
//! timeout" there when exploring candidates of width ≥ 3. This module
//! provides a scaled-down snowflake: two sales fact tables sharing
//! dimension tables, and 24 query shapes in six families covering the
//! decision-support patterns (multi-dimension star joins, date-range
//! slices, grouped rollups, channel comparison), restricted to the
//! engine's SQL subset.

use crate::datagen::{Distribution, RowGenerator};
use aim_core::WeightedQuery;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema};
use crate::rng::{Rng, SeedableRng, StdRng};

/// TPC-DS generator configuration.
#[derive(Debug, Clone)]
pub struct TpcdsConfig {
    /// Rows in each sales fact table; dimensions scale from it.
    pub sales_rows: i64,
    pub seed: u64,
}

impl Default for TpcdsConfig {
    fn default() -> Self {
        Self {
            sales_rows: 10_000,
            seed: 0xD5,
        }
    }
}

const YEARS: i64 = 5; // date_dim spans 5 years of days
const CATEGORIES: &[&str] = &["Books", "Electronics", "Home", "Music", "Shoes", "Sports"];

/// Builds and populates the snowflake database, statistics analyzed.
pub fn build_database(cfg: &TpcdsConfig) -> Database {
    let mut db = Database::new();
    use ColumnType::*;
    let mk = |name: &str, cols: Vec<(&str, ColumnType)>| {
        TableSchema::new(
            name,
            cols.into_iter()
                .map(|(c, t)| ColumnDef::new(c, t))
                .collect(),
            &["id"],
        )
        .expect("valid schema")
    };

    let days = YEARS * 365;
    let items = (cfg.sales_rows / 20).max(50);
    let customers = (cfg.sales_rows / 10).max(100);
    let stores = 12;
    let promos = 30;

    db.create_table(mk(
        "date_dim",
        vec![
            ("id", Int),
            ("year", Int),
            ("month", Int),
            ("day_of_week", Int),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "item",
        vec![
            ("id", Int),
            ("category", Str),
            ("brand_id", Int),
            ("current_price", Float),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "customer",
        vec![
            ("id", Int),
            ("birth_year", Int),
            ("state", Int),
            ("credit_rating", Int),
        ],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "store",
        vec![("id", Int), ("state", Int), ("floor_space", Int)],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "promotion",
        vec![("id", Int), ("channel", Int), ("cost", Float)],
    ))
    .expect("fresh db");
    for fact in ["store_sales", "web_sales"] {
        db.create_table(mk(
            fact,
            vec![
                ("id", Int),
                ("date_id", Int),
                ("item_id", Int),
                ("customer_id", Int),
                ("store_id", Int),
                ("promo_id", Int),
                ("quantity", Int),
                ("sales_price", Float),
                ("net_profit", Float),
            ],
        ))
        .expect("fresh db");
    }

    // date_dim is structured, not random.
    {
        let mut io = IoStats::new();
        for d in 0..days {
            db.table_mut("date_dim")
                .expect("exists")
                .insert(
                    vec![
                        aim_storage::Value::Int(d),
                        aim_storage::Value::Int(1998 + d / 365),
                        aim_storage::Value::Int((d / 30) % 12 + 1),
                        aim_storage::Value::Int(d % 7),
                    ],
                    &mut io,
                )
                .expect("serial");
        }
    }
    let fill = |db: &mut Database, table: &str, n: i64, dists: Vec<Distribution>, seed: u64| {
        let mut g = RowGenerator::new(seed, dists);
        let mut io = IoStats::new();
        for _ in 0..n {
            db.table_mut(table)
                .expect("exists")
                .insert(g.next_row(), &mut io)
                .expect("serial");
        }
    };
    fill(
        &mut db,
        "item",
        items,
        vec![
            Distribution::Serial,
            Distribution::Categorical(CATEGORIES.iter().map(|s| s.to_string()).collect()),
            Distribution::UniformInt(100),
            Distribution::UniformFloat(300.0),
        ],
        cfg.seed ^ 1,
    );
    fill(
        &mut db,
        "customer",
        customers,
        vec![
            Distribution::Serial,
            Distribution::UniformInt(80), // birth_year offset from 1930
            Distribution::UniformInt(50),
            Distribution::UniformInt(4),
        ],
        cfg.seed ^ 2,
    );
    fill(
        &mut db,
        "store",
        stores,
        vec![
            Distribution::Serial,
            Distribution::UniformInt(50),
            Distribution::UniformInt(10_000),
        ],
        cfg.seed ^ 3,
    );
    fill(
        &mut db,
        "promotion",
        promos,
        vec![
            Distribution::Serial,
            Distribution::UniformInt(3),
            Distribution::UniformFloat(5_000.0),
        ],
        cfg.seed ^ 4,
    );
    for (i, fact) in ["store_sales", "web_sales"].iter().enumerate() {
        fill(
            &mut db,
            fact,
            cfg.sales_rows,
            vec![
                Distribution::Serial,
                Distribution::UniformInt(days),
                Distribution::Zipf { n: items, s: 1.1 },
                Distribution::ForeignKey(customers),
                Distribution::UniformInt(stores),
                Distribution::Zipf { n: promos, s: 1.2 },
                Distribution::UniformInt(100),
                Distribution::UniformFloat(500.0),
                Distribution::UniformFloat(100.0),
            ],
            cfg.seed ^ (10 + i as u64),
        );
    }
    db.analyze_all();
    db
}

/// 24 query shapes in six families (`ds1a`.. `ds6d`).
pub fn query_texts(seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    // Family 1: date-sliced store sales rollup (fact + date_dim).
    for v in 0..4 {
        let year = 1998 + rng.gen_range(0..YEARS);
        out.push((format!("ds1{}", (b'a' + v) as char), format!(
            "SELECT d.month, SUM(ss.sales_price), COUNT(*) \
             FROM store_sales ss, date_dim d \
             WHERE ss.date_id = d.id AND d.year = {year} AND d.day_of_week = {dow} \
             GROUP BY d.month ORDER BY d.month",
            dow = rng.gen_range(0..7)
        )));
    }
    // Family 2: category revenue (fact + item + date).
    for v in 0..4 {
        let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let year = 1998 + rng.gen_range(0..YEARS);
        out.push((format!("ds2{}", (b'a' + v) as char), format!(
            "SELECT i.brand_id, SUM(ss.net_profit) \
             FROM store_sales ss, item i, date_dim d \
             WHERE ss.item_id = i.id AND ss.date_id = d.id \
             AND i.category = '{cat}' AND d.year = {year} \
             GROUP BY i.brand_id ORDER BY i.brand_id LIMIT 20"
        )));
    }
    // Family 3: customer-demographic slice (fact + customer + store).
    for v in 0..4 {
        let state = rng.gen_range(0..50);
        let rating = rng.gen_range(0..4);
        out.push((format!("ds3{}", (b'a' + v) as char), format!(
            "SELECT s.id, COUNT(*) FROM store_sales ss, customer c, store s \
             WHERE ss.customer_id = c.id AND ss.store_id = s.id \
             AND c.state = {state} AND c.credit_rating = {rating} \
             GROUP BY s.id ORDER BY s.id"
        )));
    }
    // Family 4: promotion effectiveness (fact + promotion + item).
    for v in 0..4 {
        let channel = rng.gen_range(0..3);
        let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        out.push((format!("ds4{}", (b'a' + v) as char), format!(
            "SELECT p.id, SUM(ss.quantity) FROM store_sales ss, promotion p, item i \
             WHERE ss.promo_id = p.id AND ss.item_id = i.id \
             AND p.channel = {channel} AND i.category = '{cat}' \
             GROUP BY p.id ORDER BY p.id LIMIT 10"
        )));
    }
    // Family 5: web channel, price-band scan (fact + item).
    for v in 0..4 {
        let lo = rng.gen_range(0..40);
        out.push((format!("ds5{}", (b'a' + v) as char), format!(
            "SELECT ws.id, ws.sales_price FROM web_sales ws, item i \
             WHERE ws.item_id = i.id AND i.current_price BETWEEN {lo}.0 AND {hi}.0 \
             AND ws.quantity > 80 ORDER BY ws.sales_price DESC LIMIT 50",
            hi = lo + 15
        )));
    }
    // Family 6: five-way star (fact + date + item + customer + store).
    for v in 0..4 {
        let year = 1998 + rng.gen_range(0..YEARS);
        let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let state = rng.gen_range(0..50);
        out.push((format!("ds6{}", (b'a' + v) as char), format!(
            "SELECT c.state, SUM(ss.net_profit) \
             FROM store_sales ss, date_dim d, item i, customer c, store s \
             WHERE ss.date_id = d.id AND ss.item_id = i.id AND ss.customer_id = c.id \
             AND ss.store_id = s.id AND d.year = {year} AND i.category = '{cat}' \
             AND s.state = {state} GROUP BY c.state ORDER BY c.state"
        )));
    }
    out
}

/// Parses the 24 queries into a weighted workload (weight 1 each).
pub fn weighted_workload(seed: u64) -> Vec<WeightedQuery> {
    query_texts(seed)
        .into_iter()
        .map(|(label, sql)| {
            let stmt = parse_statement(&sql)
                .unwrap_or_else(|e| panic!("{label} fails to parse: {e}\n{sql}"));
            WeightedQuery::new(stmt, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;

    #[test]
    fn all_queries_parse() {
        assert_eq!(weighted_workload(9).len(), 24);
    }

    #[test]
    fn database_builds_and_small_joins_execute() {
        let cfg = TpcdsConfig {
            sales_rows: 800,
            seed: 9,
        };
        let mut db = build_database(&cfg);
        assert_eq!(db.table("store_sales").unwrap().row_count(), 800);
        assert_eq!(db.table("date_dim").unwrap().row_count() as i64, YEARS * 365);
        let engine = Engine::new();
        for (label, sql) in query_texts(9) {
            let stmt = parse_statement(&sql).unwrap();
            if let aim_sql::Statement::Select(s) = &stmt {
                if s.from.len() <= 3 {
                    let r = engine.execute(&mut db, &stmt);
                    assert!(r.is_ok(), "{label}: {:?}", r.err());
                }
            }
        }
    }

    #[test]
    fn aim_advisor_improves_tpcds() {
        use aim_core::{defs_to_config, workload_cost, AimAdvisor, IndexAdvisor};
        use aim_exec::{CostModel, HypoConfig};
        let cfg = TpcdsConfig {
            sales_rows: 2_000,
            seed: 9,
        };
        let db = build_database(&cfg);
        let w = weighted_workload(9);
        let cm = CostModel::default();
        let base = workload_cost(&db, &w, &HypoConfig::only(Vec::new()), &cm);
        let mut advisor = AimAdvisor::new(3, 3);
        let defs = advisor.recommend(&db, &w, u64::MAX);
        assert!(!defs.is_empty());
        let with = workload_cost(&db, &w, &defs_to_config(&db, &defs), &cm);
        assert!(with < base * 0.8, "base {base}, with {with}");
    }
}
