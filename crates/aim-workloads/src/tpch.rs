//! TPC-H-like analytical benchmark (schema + 22 query shapes).
//!
//! The paper's Figure 4a/4b and Figure 5 evaluate advisors on TPC-H. This
//! module provides a scaled-down generator with the same table topology,
//! key relationships and column roles, and 22 queries that preserve each
//! TPC-H query's *structure* (join graph, predicate shapes, grouping and
//! ordering) within the engine's SQL subset — subqueries and outer joins
//! are rewritten or elided, which is documented per query. Since advisor
//! comparisons rank configurations by optimizer-estimated cost, preserving
//! structure preserves the comparison's shape.
//!
//! Dates are encoded as integer day numbers (days since 1992-01-01,
//! range 0..=2556 covering 1992–1998, as in TPC-H).

use crate::datagen::{Distribution, RowGenerator};
use aim_core::WeightedQuery;
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema};
use crate::rng::{Rng, SeedableRng, StdRng};

/// TPC-H generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale factor relative to SF 1 (SF 1 = 6M lineitems). The default
    /// 0.002 yields ~12k lineitem rows — enough for meaningful statistics
    /// while keeping the simulated engine fast.
    pub scale: f64,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            scale: 0.002,
            seed: 0xAA17,
        }
    }
}

const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: &[&str] = &["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const RETURNFLAGS: &[&str] = &["A", "N", "R"];
const LINESTATUS: &[&str] = &["F", "O"];
const BRANDS: &[&str] = &["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: &[&str] = &["ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED"];
const CONTAINERS: &[&str] = &["SM BOX", "MED BOX", "LG BOX", "SM PKG", "MED PKG", "LG PKG"];

fn cat(options: &[&str]) -> Distribution {
    Distribution::Categorical(options.iter().map(|s| s.to_string()).collect())
}

/// Row counts for each table at the configured scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchCardinalities {
    pub supplier: i64,
    pub customer: i64,
    pub part: i64,
    pub partsupp: i64,
    pub orders: i64,
    pub lineitem: i64,
}

impl TpchConfig {
    /// Cardinalities at this scale (floored at small minimums).
    pub fn cardinalities(&self) -> TpchCardinalities {
        let s = self.scale.max(1e-5);
        let n = |base: f64, min: i64| ((base * s) as i64).max(min);
        TpchCardinalities {
            supplier: n(10_000.0, 20),
            customer: n(150_000.0, 100),
            part: n(200_000.0, 100),
            partsupp: n(800_000.0, 200),
            orders: n(1_500_000.0, 500),
            lineitem: n(6_000_000.0, 2_000),
        }
    }
}

/// Builds and populates the TPC-H-like database, with statistics analyzed.
pub fn build_database(cfg: &TpchConfig) -> Database {
    let card = cfg.cardinalities();
    let mut db = Database::new();
    let mut io = IoStats::new();

    let mk = |name: &str, cols: Vec<(&str, ColumnType)>, pk: Vec<&str>| {
        TableSchema::new(
            name,
            cols.into_iter()
                .map(|(c, t)| ColumnDef::new(c, t))
                .collect(),
            &pk,
        )
        .expect("valid schema")
    };
    use ColumnType::*;

    db.create_table(mk(
        "region",
        vec![("r_regionkey", Int), ("r_name", Str)],
        vec!["r_regionkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "nation",
        vec![("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)],
        vec!["n_nationkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "supplier",
        vec![
            ("s_suppkey", Int),
            ("s_name", Str),
            ("s_nationkey", Int),
            ("s_acctbal", Float),
        ],
        vec!["s_suppkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "customer",
        vec![
            ("c_custkey", Int),
            ("c_name", Str),
            ("c_nationkey", Int),
            ("c_mktsegment", Str),
            ("c_acctbal", Float),
        ],
        vec!["c_custkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "part",
        vec![
            ("p_partkey", Int),
            ("p_name", Str),
            ("p_brand", Str),
            ("p_type", Str),
            ("p_size", Int),
            ("p_container", Str),
            ("p_retailprice", Float),
        ],
        vec!["p_partkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "partsupp",
        vec![
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_availqty", Int),
            ("ps_supplycost", Float),
        ],
        vec!["ps_partkey", "ps_suppkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "orders",
        vec![
            ("o_orderkey", Int),
            ("o_custkey", Int),
            ("o_orderstatus", Str),
            ("o_totalprice", Float),
            ("o_orderdate", Int),
            ("o_orderpriority", Str),
            ("o_shippriority", Int),
        ],
        vec!["o_orderkey"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "lineitem",
        vec![
            ("l_orderkey", Int),
            ("l_linenumber", Int),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_quantity", Int),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_tax", Float),
            ("l_returnflag", Str),
            ("l_linestatus", Str),
            ("l_shipdate", Int),
            ("l_commitdate", Int),
            ("l_receiptdate", Int),
            ("l_shipmode", Str),
        ],
        vec!["l_orderkey", "l_linenumber"],
    ))
    .expect("fresh db");

    // region / nation: fixed tiny tables.
    let regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    for (i, name) in regions.iter().enumerate() {
        db.table_mut("region")
            .expect("exists")
            .insert(
                vec![
                    aim_storage::Value::Int(i as i64),
                    aim_storage::Value::Str(name.to_string()),
                ],
                &mut io,
            )
            .expect("unique keys");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in 0..25i64 {
        db.table_mut("nation")
            .expect("exists")
            .insert(
                vec![
                    aim_storage::Value::Int(i),
                    aim_storage::Value::Str(format!("NATION{i:02}")),
                    aim_storage::Value::Int(rng.gen_range(0..5)),
                ],
                &mut io,
            )
            .expect("unique keys");
    }

    let fill = |db: &mut Database, table: &str, n: i64, dists: Vec<Distribution>, seed: u64| {
        let mut g = RowGenerator::new(seed, dists);
        let mut io = IoStats::new();
        for _ in 0..n {
            let row = g.next_row();
            db.table_mut(table)
                .expect("exists")
                .insert(row, &mut io)
                .expect("unique serial keys");
        }
    };

    fill(
        &mut db,
        "supplier",
        card.supplier,
        vec![
            Distribution::Serial,
            Distribution::RandomString(12),
            Distribution::UniformInt(25),
            Distribution::UniformFloat(10_000.0),
        ],
        cfg.seed ^ 1,
    );
    fill(
        &mut db,
        "customer",
        card.customer,
        vec![
            Distribution::Serial,
            Distribution::RandomString(12),
            Distribution::UniformInt(25),
            cat(SEGMENTS),
            Distribution::UniformFloat(10_000.0),
        ],
        cfg.seed ^ 2,
    );
    fill(
        &mut db,
        "part",
        card.part,
        vec![
            Distribution::Serial,
            Distribution::RandomString(16),
            cat(BRANDS),
            cat(TYPES),
            Distribution::UniformInt(50),
            cat(CONTAINERS),
            Distribution::UniformFloat(2_000.0),
        ],
        cfg.seed ^ 3,
    );

    // partsupp: composite PK (ps_partkey, ps_suppkey) must be unique:
    // derive both from a serial counter.
    {
        let mut g = RowGenerator::new(
            cfg.seed ^ 4,
            vec![
                Distribution::Serial,
                Distribution::UniformInt(10_000),
                Distribution::UniformFloat(1_000.0),
            ],
        );
        let mut io = IoStats::new();
        let per_part = (card.partsupp / card.part.max(1)).max(1);
        for i in 0..card.partsupp {
            let row = g.next_row();
            let part = (i / per_part) % card.part.max(1);
            let supp = (i % card.supplier.max(1) + i / card.part.max(1)) % card.supplier.max(1);
            db.table_mut("partsupp")
                .expect("exists")
                .insert(
                    vec![
                        aim_storage::Value::Int(part),
                        aim_storage::Value::Int(supp),
                        row[1].clone(),
                        row[2].clone(),
                    ],
                    &mut io,
                )
                .ok(); // rare composite collisions are skipped
        }
    }

    fill(
        &mut db,
        "orders",
        card.orders,
        vec![
            Distribution::Serial,
            Distribution::ForeignKey(card.customer),
            cat(&["F", "O", "P"]),
            Distribution::UniformFloat(400_000.0),
            Distribution::UniformInt(2557), // o_orderdate day number
            cat(PRIORITIES),
            Distribution::UniformInt(2),
        ],
        cfg.seed ^ 5,
    );

    // lineitem: composite PK (l_orderkey, l_linenumber).
    {
        let mut g = RowGenerator::new(
            cfg.seed ^ 6,
            vec![
                Distribution::ForeignKey(card.part),
                Distribution::ForeignKey(card.supplier),
                Distribution::UniformInt(50),
                Distribution::UniformFloat(100_000.0),
                Distribution::UniformFloat(0.11),
                Distribution::UniformFloat(0.09),
                cat(RETURNFLAGS),
                cat(LINESTATUS),
                Distribution::UniformInt(2557),
                Distribution::UniformInt(2557),
                Distribution::UniformInt(2557),
                cat(SHIPMODES),
            ],
        );
        let mut io = IoStats::new();
        let per_order = (card.lineitem / card.orders.max(1)).max(1);
        for i in 0..card.lineitem {
            let rest = g.next_row();
            let orderkey = (i / per_order) % card.orders.max(1);
            let linenumber = i % per_order;
            let mut row = vec![
                aim_storage::Value::Int(orderkey),
                aim_storage::Value::Int(linenumber),
            ];
            row.extend(rest);
            db.table_mut("lineitem")
                .expect("exists")
                .insert(row, &mut io)
                .expect("unique composite keys");
        }
    }

    db.analyze_all();
    db
}

/// The 22 query shapes, parameterized deterministically from `seed`.
/// Returns `(label, SQL)` pairs; labels are `Q1`..`Q22`.
pub fn query_texts(seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut date = |lo: i64, hi: i64| rng.gen_range(lo..hi);
    let seg = SEGMENTS[2];
    let brand = BRANDS[1];
    let ty = TYPES[0];
    let mode1 = SHIPMODES[0];
    let mode2 = SHIPMODES[5];

    let d1 = date(300, 1500);
    let d2 = date(300, 1500);
    let d3 = date(300, 1500);
    let d4 = date(300, 1200);
    let d5 = date(300, 1200);

    vec![
        // Q1: pricing summary report (single table, range + group + order).
        ("Q1".into(), format!(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
             AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= {d} \
             GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
            d = 2557 - 90
        )),
        // Q2: minimum cost supplier (correlated subquery flattened to a join
        // + tight filters).
        ("Q2".into(), format!(
            "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation, region \
             WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 \
             AND p_type = '{ty}' AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND r_name = 'EUROPE' AND ps_supplycost < 100.0 ORDER BY s_acctbal DESC LIMIT 100"
        )),
        // Q3: shipping priority.
        ("Q3".into(), format!(
            "SELECT o_orderkey, SUM(l_extendedprice), o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = '{seg}' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate < {d1} AND l_shipdate > {d1} \
             GROUP BY o_orderkey, o_orderdate, o_shippriority ORDER BY o_orderkey LIMIT 10"
        )),
        // Q4: order priority checking (EXISTS flattened to a join).
        ("Q4".into(), format!(
            "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND o_orderdate >= {d2} AND o_orderdate < {e} \
             AND l_commitdate < l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority",
            e = d2 + 90
        )),
        // Q5: local supplier volume (6-way join).
        ("Q5".into(), format!(
            "SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
             AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey \
             AND n_regionkey = r_regionkey AND r_name = 'ASIA' \
             AND o_orderdate >= {d3} AND o_orderdate < {e} GROUP BY n_name ORDER BY n_name",
            e = d3 + 365
        )),
        // Q6: forecasting revenue change (single table, three ranges).
        ("Q6".into(), format!(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= {d4} AND l_shipdate < {e} \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
            e = d4 + 365
        )),
        // Q7: volume shipping (two-nation join; nation pair as IN filters).
        ("Q7".into(), format!(
            "SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, customer, nation \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
             AND s_nationkey = n_nationkey AND n_name IN ('NATION03', 'NATION07') \
             AND l_shipdate BETWEEN {d5} AND {e} GROUP BY n_name",
            e = d5 + 730
        )),
        // Q8: national market share (simplified join chain).
        ("Q8".into(), format!(
            "SELECT o_orderdate, SUM(l_extendedprice) FROM part, lineitem, orders, customer, nation, region \
             WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
             AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'AMERICA' \
             AND p_type = '{ty}' AND o_orderdate BETWEEN 730 AND 1460 \
             GROUP BY o_orderdate ORDER BY o_orderdate"
        )),
        // Q9: product type profit measure.
        ("Q9".into(), format!(
            "SELECT n_name, SUM(l_extendedprice) FROM part, supplier, lineitem, partsupp, nation \
             WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
             AND p_partkey = l_partkey AND s_nationkey = n_nationkey AND p_brand = '{brand}' \
             GROUP BY n_name ORDER BY n_name"
        )),
        // Q10: returned item reporting.
        ("Q10".into(), format!(
            "SELECT c_custkey, c_name, SUM(l_extendedprice), c_acctbal, n_name \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate >= {d1} AND o_orderdate < {e} AND l_returnflag = 'R' \
             AND c_nationkey = n_nationkey \
             GROUP BY c_custkey, c_name, c_acctbal, n_name ORDER BY c_custkey LIMIT 20",
            e = d1 + 90
        )),
        // Q11: important stock identification.
        ("Q11".into(), "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, supplier, nation \
             WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION11' \
             GROUP BY ps_partkey ORDER BY ps_partkey LIMIT 50".to_string()),
        // Q12: shipping modes and order priority.
        ("Q12".into(), format!(
            "SELECT l_shipmode, COUNT(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_shipmode IN ('{mode1}', '{mode2}') \
             AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
             AND l_receiptdate >= {d2} AND l_receiptdate < {e} \
             GROUP BY l_shipmode ORDER BY l_shipmode",
            e = d2 + 365
        )),
        // Q13: customer distribution (outer join approximated inner).
        ("Q13".into(),
            "SELECT c_custkey, COUNT(*) FROM customer, orders \
             WHERE c_custkey = o_custkey AND o_orderpriority <> '1-URGENT' \
             GROUP BY c_custkey ORDER BY c_custkey LIMIT 100".into()
        ),
        // Q14: promotion effect.
        ("Q14".into(), format!(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem, part \
             WHERE l_partkey = p_partkey AND l_shipdate >= {d3} AND l_shipdate < {e}",
            e = d3 + 30
        )),
        // Q15: top supplier (view flattened).
        ("Q15".into(), format!(
            "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= {d4} AND l_shipdate < {e} \
             GROUP BY l_suppkey ORDER BY l_suppkey LIMIT 25",
            e = d4 + 90
        )),
        // Q16: parts/supplier relationship.
        ("Q16".into(), format!(
            "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM partsupp, part \
             WHERE p_partkey = ps_partkey AND p_brand <> '{brand}' AND p_size IN (1, 14, 23, 45) \
             GROUP BY p_brand, p_type, p_size ORDER BY p_brand LIMIT 40"
        )),
        // Q17: small-quantity-order revenue (agg subquery approximated by a
        // constant threshold).
        ("Q17".into(), format!(
            "SELECT AVG(l_extendedprice) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_brand = '{brand}' \
             AND p_container = 'MED BOX' AND l_quantity < 5"
        )),
        // Q18: large volume customer.
        ("Q18".into(),
            "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
             FROM customer, orders, lineitem \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_totalprice > 350000.0 \
             AND l_quantity > 45 ORDER BY o_totalprice DESC LIMIT 100".into()
        ),
        // Q19: discounted revenue (three-branch OR over part+lineitem).
        ("Q19".into(), format!(
            "SELECT SUM(l_extendedprice) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND \
             ((p_brand = '{b1}' AND l_quantity BETWEEN 1 AND 11) \
             OR (p_brand = '{b2}' AND l_quantity BETWEEN 10 AND 20) \
             OR (p_brand = '{b3}' AND l_quantity BETWEEN 20 AND 30))",
            b1 = BRANDS[0], b2 = BRANDS[2], b3 = BRANDS[4]
        )),
        // Q20: potential part promotion (nested subqueries flattened).
        ("Q20".into(), "SELECT s_name FROM supplier, nation, partsupp \
             WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey \
             AND n_name = 'NATION05' AND ps_availqty > 5000 ORDER BY s_name LIMIT 50".to_string()),
        // Q21: suppliers who kept orders waiting (covering-index showcase).
        ("Q21".into(),
            "SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F' \
             AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey \
             AND n_name = 'NATION13' GROUP BY s_name ORDER BY s_name LIMIT 100".into()
        ),
        // Q22: global sales opportunity (country-code prefix as IN filter).
        ("Q22".into(),
            "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer \
             WHERE c_nationkey IN (3, 7, 11, 15, 19, 23) AND c_acctbal > 0.0 \
             GROUP BY c_nationkey ORDER BY c_nationkey".into()
        ),
    ]
}

/// Parses the 22 queries into weighted workload entries (weight 1 each, as
/// in the analytical benchmark setting).
pub fn weighted_workload(seed: u64) -> Vec<WeightedQuery> {
    query_texts(seed)
        .into_iter()
        .map(|(label, sql)| {
            let stmt = parse_statement(&sql)
                .unwrap_or_else(|e| panic!("{label} fails to parse: {e}\n{sql}"));
            WeightedQuery::new(stmt, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_exec::Engine;
    use aim_sql::ast::Statement;

    #[test]
    fn all_22_queries_parse() {
        let w = weighted_workload(7);
        assert_eq!(w.len(), 22);
    }

    #[test]
    fn database_builds_with_expected_cardinalities() {
        let cfg = TpchConfig {
            scale: 0.001,
            seed: 5,
        };
        let db = build_database(&cfg);
        let card = cfg.cardinalities();
        assert_eq!(db.table("orders").unwrap().row_count() as i64, card.orders);
        assert_eq!(
            db.table("lineitem").unwrap().row_count() as i64,
            card.lineitem
        );
        assert_eq!(db.table("region").unwrap().row_count(), 5);
        assert_eq!(db.table("nation").unwrap().row_count(), 25);
        assert!(db.stats("lineitem").is_some());
    }

    #[test]
    fn single_table_queries_execute() {
        let cfg = TpchConfig {
            scale: 0.0005,
            seed: 5,
        };
        let mut db = build_database(&cfg);
        let engine = Engine::new();
        for (label, sql) in query_texts(7) {
            let stmt = parse_statement(&sql).unwrap();
            // Execute the cheap single/double-table queries end to end.
            if let Statement::Select(s) = &stmt {
                if s.from.len() <= 2 {
                    let out = engine.execute(&mut db, &stmt);
                    assert!(out.is_ok(), "{label}: {:?}", out.err());
                }
            }
        }
    }

    #[test]
    fn q6_returns_plausible_aggregate() {
        let cfg = TpchConfig {
            scale: 0.001,
            seed: 5,
        };
        let mut db = build_database(&cfg);
        let engine = Engine::new();
        let (label, sql) = query_texts(7).into_iter().nth(5).unwrap();
        assert_eq!(label, "Q6");
        let out = engine
            .execute(&mut db, &parse_statement(&sql).unwrap())
            .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig {
            scale: 0.0005,
            seed: 99,
        };
        let a = build_database(&cfg);
        let b = build_database(&cfg);
        assert_eq!(
            a.table("orders").unwrap().data_bytes(),
            b.table("orders").unwrap().data_bytes()
        );
        assert_eq!(query_texts(3), query_texts(3));
    }
}
