//! Head-to-head advisor comparison on the TPC-H-like workload.
//!
//! Runs AIM and every baseline through the common [`IndexAdvisor`] harness
//! at a fixed budget and prints estimated workload cost, runtime and
//! optimizer (what-if) call counts — a miniature of the paper's §VI-B.
//!
//! ```sh
//! cargo run -p aim-bench --example advisor_comparison --release
//! ```

use aim_baselines::{AutoAdmin, Db2Advis, DropHeuristic, Dta, Extend};
use aim_core::{config_size, defs_to_config, workload_cost, AimAdvisor, IndexAdvisor};
use aim_exec::{CostModel, HypoConfig};
use std::time::Instant;

fn main() {
    let cfg = aim_workloads::tpch::TpchConfig {
        scale: 0.002,
        seed: 0xAA17,
    };
    println!("building TPC-H-like database (scale {}) ...", cfg.scale);
    let db = aim_workloads::tpch::build_database(&cfg);
    let workload = aim_workloads::tpch::weighted_workload(17);
    let cm = CostModel::default();
    let base = workload_cost(&db, &workload, &HypoConfig::only(Vec::new()), &cm);

    // Budget: 60% of AIM's unconstrained configuration.
    let mut probe = AimAdvisor::new(3, 4);
    let full = probe.recommend(&db, &workload, u64::MAX);
    let budget = (config_size(&db, &full) as f64 * 0.6) as u64;
    println!("unindexed workload cost: {base:.0} cost units; budget {budget} bytes\n");
    println!(
        "{:<10} {:>9} {:>8} {:>10} {:>8} {:>12}",
        "advisor", "rel.cost", "indexes", "runtime", "whatif", "bytes used"
    );

    let run = |name: &str, advisor: &mut dyn IndexAdvisor, calls: &dyn Fn() -> u64| {
        let start = Instant::now();
        let defs = advisor.recommend(&db, &workload, budget);
        let elapsed = start.elapsed();
        let cost = workload_cost(&db, &workload, &defs_to_config(&db, &defs), &cm);
        println!(
            "{name:<10} {:>9.3} {:>8} {:>10.3?} {:>8} {:>12}",
            cost / base,
            defs.len(),
            elapsed,
            calls(),
            config_size(&db, &defs)
        );
    };

    let mut aim = AimAdvisor::new(3, 4);
    run("AIM", &mut aim, &|| 0);
    let mut dta = Dta::new(4);
    run("DTA", &mut dta, &|| 0);
    println!("{:>38} DTA what-if calls: {}", "", dta.last_whatif_calls);
    let mut ext = Extend::new(4);
    run("Extend", &mut ext, &|| 0);
    println!("{:>38} Extend what-if calls: {}", "", ext.last_whatif_calls);
    let mut aa = AutoAdmin::new(4);
    run("AutoAdmin", &mut aa, &|| 0);
    let mut d2 = Db2Advis::new(4);
    run("DB2Advis", &mut d2, &|| 0);
    let mut dr = DropHeuristic::new(4);
    run("Drop", &mut dr, &|| 0);
}
