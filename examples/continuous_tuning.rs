//! Continuous tuning: workload shifts, unused-index garbage collection and
//! the regression safety net (§VI-D / §VII-C of the paper).
//!
//! ```sh
//! cargo run -p aim-bench --example continuous_tuning --release
//! ```

use aim_core::continuous::ContinuousTuner;
use aim_core::AimConfig;
use aim_exec::Engine;
use aim_monitor::{SelectionConfig, WorkloadMonitor};
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

fn main() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("user_id", ColumnType::Int),
                ColumnDef::new("kind", ColumnType::Int),
                ColumnDef::new("ts", ColumnType::Int),
                ColumnDef::new("payload", ColumnType::Str),
            ],
            &["id"],
        )
        .expect("valid schema"),
    )
    .expect("fresh db");
    let mut io = IoStats::new();
    for i in 0..30_000i64 {
        db.table_mut("events")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i),
                    Value::Int(i % 500),
                    Value::Int(i % 12),
                    Value::Int(i % 1000),
                    Value::Str(format!("payload-{i}")),
                ],
                &mut io,
            )
            .expect("unique");
    }
    db.analyze_all();

    let engine = Engine::new();
    let mut tuner = ContinuousTuner::with_session(
        AimConfig::builder()
            .selection(SelectionConfig {
                min_executions: 2,
                min_benefit: 0.5,
                ..Default::default()
            })
            .session(),
        0.5,
    );
    tuner.unused_grace_windows = 2;

    let run_window = |db: &mut Database, queries: &[&str]| -> WorkloadMonitor {
        let mut monitor = WorkloadMonitor::new();
        for _ in 0..15 {
            for q in queries {
                let stmt = parse_statement(q).expect("valid SQL");
                let out = engine.execute(db, &stmt).expect("executes");
                monitor.record(&stmt, &out);
            }
        }
        monitor
    };

    // Era 1: the app queries by user.
    let era1 = ["SELECT id, ts FROM events WHERE user_id = 42"];
    // Era 2: a new feature queries by kind + time; user queries stop.
    let era2 = ["SELECT id, user_id FROM events WHERE kind = 3 AND ts > 900"];

    println!("era 1 (by-user queries):");
    for window in 1..=2 {
        let monitor = run_window(&mut db, &era1);
        let out = tuner.step(&mut db, &monitor).expect("tuning step");
        println!(
            "  window {window}: +{} indexes {:?}, dropped {:?}",
            out.tuning.created.len(),
            out.tuning
                .created
                .iter()
                .map(|c| c.def.name.clone())
                .collect::<Vec<_>>(),
            out.dropped_unused
        );
    }

    println!("era 2 (workload shift to by-kind queries):");
    for window in 1..=4 {
        let monitor = run_window(&mut db, &era2);
        let out = tuner.step(&mut db, &monitor).expect("tuning step");
        println!(
            "  window {window}: +{} indexes {:?}, dropped {:?}",
            out.tuning.created.len(),
            out.tuning
                .created
                .iter()
                .map(|c| c.def.name.clone())
                .collect::<Vec<_>>(),
            out.dropped_unused
        );
    }

    println!("\nfinal physical design:");
    for d in db.all_indexes() {
        println!("  {}({})", d.table, d.columns.join(", "));
    }
    // The era-1 index (leading on user_id) was created, went unused
    // through era 2's grace period, and was garbage-collected; the era-2
    // index (leading on kind/ts) remains. Note user_id may still appear
    // *inside* the era-2 covering index as a projection column.
    let leading: Vec<String> = db
        .all_indexes()
        .iter()
        .map(|d| d.columns[0].clone())
        .collect();
    assert!(
        leading.iter().all(|c| c != "user_id"),
        "stale index should have been dropped: {leading:?}"
    );
    assert!(
        leading.iter().any(|c| c == "kind" || c == "ts"),
        "era-2 index should exist: {leading:?}"
    );
}
