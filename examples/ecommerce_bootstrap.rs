//! Bootstrapping an e-commerce database from zero secondary indexes.
//!
//! Models the paper's §VI-A experiment on a realistic multi-table scenario:
//! orders, customers, products and order_items with joins, aggregates,
//! ORDER BY ... LIMIT, and a write mix. AIM runs in rounds — the two-phase
//! behaviour is visible: narrow indexes land first, covering indexes arrive
//! once the narrow ones are observed with high seek counts.
//!
//! ```sh
//! cargo run -p aim-bench --example ecommerce_bootstrap --release
//! ```

use aim_core::AimConfig;
use aim_exec::Engine;
use aim_monitor::{SelectionConfig, WorkloadMonitor};
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

fn build_shop() -> Database {
    let mut db = Database::new();
    let mk = |name: &str, cols: Vec<(&str, ColumnType)>, pk: Vec<&str>| {
        TableSchema::new(
            name,
            cols.into_iter()
                .map(|(c, t)| ColumnDef::new(c, t))
                .collect(),
            &pk,
        )
        .expect("valid schema")
    };
    use ColumnType::*;
    db.create_table(mk(
        "customers",
        vec![
            ("id", Int),
            ("email", Str),
            ("country", Int),
            ("tier", Int),
        ],
        vec!["id"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "products",
        vec![
            ("id", Int),
            ("category", Int),
            ("price", Float),
            ("stock", Int),
        ],
        vec!["id"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "orders",
        vec![
            ("id", Int),
            ("customer_id", Int),
            ("status", Str),
            ("placed_at", Int),
            ("total", Float),
        ],
        vec!["id"],
    ))
    .expect("fresh db");
    db.create_table(mk(
        "order_items",
        vec![
            ("order_id", Int),
            ("line", Int),
            ("product_id", Int),
            ("qty", Int),
            ("amount", Float),
        ],
        vec!["order_id", "line"],
    ))
    .expect("fresh db");

    let mut io = IoStats::new();
    let statuses = ["placed", "paid", "shipped", "delivered", "cancelled"];
    for i in 0..3_000i64 {
        db.table_mut("customers")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i),
                    Value::Str(format!("user{i}@example.com")),
                    Value::Int(i % 40),
                    Value::Int(i % 4),
                ],
                &mut io,
            )
            .expect("unique");
    }
    for i in 0..1_000i64 {
        db.table_mut("products")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i),
                    Value::Int(i % 25),
                    Value::Float((i % 97) as f64 + 0.99),
                    Value::Int(i % 500),
                ],
                &mut io,
            )
            .expect("unique");
    }
    for i in 0..15_000i64 {
        db.table_mut("orders")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i),
                    Value::Int(i % 3_000),
                    Value::Str(statuses[(i % 5) as usize].to_string()),
                    Value::Int(i % 365),
                    Value::Float((i % 390) as f64),
                ],
                &mut io,
            )
            .expect("unique");
    }
    for i in 0..40_000i64 {
        db.table_mut("order_items")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i / 3),
                    Value::Int(i % 3),
                    Value::Int((i * 7) % 1_000),
                    Value::Int(i % 5 + 1),
                    Value::Float((i % 120) as f64),
                ],
                &mut io,
            )
            .expect("unique");
    }
    db.analyze_all();
    db
}

fn main() {
    let mut db = build_shop();
    let engine = Engine::new();

    let workload = [
        // Customer order history page.
        ("history", "SELECT id, status, total FROM orders WHERE customer_id = 117 ORDER BY placed_at LIMIT 20", 30),
        // Open orders dashboard.
        ("dashboard", "SELECT id, total FROM orders WHERE status = 'placed' AND placed_at > 300", 20),
        // Revenue by category (join + group).
        ("revenue", "SELECT p.category, SUM(oi.amount) FROM order_items oi, products p \
                     WHERE oi.product_id = p.id AND p.category = 7 GROUP BY p.category", 10),
        // Who bought this product (3-way join).
        ("buyers", "SELECT c.email FROM customers c, orders o, order_items oi \
                    WHERE c.id = o.customer_id AND o.id = oi.order_id AND oi.product_id = 42", 10),
        // Restock check.
        ("restock", "SELECT id, stock FROM products WHERE category = 3 AND stock < 10", 15),
        // Order placement (writes).
        ("update", "UPDATE orders SET status = 'paid' WHERE id = 5000", 25),
    ];

    println!("=== before tuning ===");
    let mut monitor = WorkloadMonitor::new();
    let mut before_cost = 0.0;
    for (label, sql, reps) in &workload {
        let stmt = parse_statement(sql).expect("valid SQL");
        let mut cost = 0.0;
        for _ in 0..*reps {
            let out = engine.execute(&mut db, &stmt).expect("executes");
            cost += out.cost;
            monitor.record(&stmt, &out);
        }
        before_cost += cost;
        println!("  {label:<10} total cost {cost:>10.1}");
    }

    // Multiple rounds: the second round sees the narrow indexes in use and
    // can promote qualifying queries to covering indexes.
    let session = AimConfig::builder()
        .selection(SelectionConfig {
            min_executions: 2,
            min_benefit: 0.5,
            ..Default::default()
        })
        .session();
    for round in 1..=3 {
        let outcome = session.run(&mut db, &monitor).expect("tuning pass");
        println!("\n=== tuning round {round}: {} new indexes ===", outcome.created.len());
        for c in &outcome.created {
            println!("  {}", c.explanation);
        }
        for (name, why) in &outcome.rejected {
            println!("  rejected {name}: {why}");
        }
        if outcome.created.is_empty() {
            break;
        }
        // Observe another window with the new physical design.
        monitor.reset();
        for (_, sql, reps) in &workload {
            let stmt = parse_statement(sql).expect("valid SQL");
            for _ in 0..*reps {
                let out = engine.execute(&mut db, &stmt).expect("executes");
                monitor.record(&stmt, &out);
            }
        }
    }

    println!("\n=== after tuning ===");
    let mut after_cost = 0.0;
    for (label, sql, reps) in &workload {
        let stmt = parse_statement(sql).expect("valid SQL");
        let mut cost = 0.0;
        for _ in 0..*reps {
            let out = engine.execute(&mut db, &stmt).expect("executes");
            cost += out.cost;
        }
        after_cost += cost;
        println!("  {label:<10} total cost {cost:>10.1}");
    }
    println!(
        "\nworkload cost: {before_cost:.0} -> {after_cost:.0} ({:.1}x better), {} indexes, {} bytes",
        before_cost / after_cost,
        db.all_indexes().len(),
        db.total_secondary_index_bytes()
    );
}
