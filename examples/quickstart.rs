//! Quickstart: observe a workload, let AIM pick indexes, see the effect.
//!
//! ```sh
//! cargo run -p aim-bench --example quickstart --release
//! ```

use aim_core::AimConfig;
use aim_exec::Engine;
use aim_monitor::{SelectionConfig, WorkloadMonitor};
use aim_sql::parse_statement;
use aim_storage::{ColumnDef, ColumnType, Database, IoStats, TableSchema, Value};

fn main() {
    // 1. A table with some data.
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "students",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("score", ColumnType::Int),
                ColumnDef::new("class", ColumnType::Int),
            ],
            &["id"],
        )
        .expect("valid schema"),
    )
    .expect("fresh database");
    let mut io = IoStats::new();
    for i in 0..20_000i64 {
        db.table_mut("students")
            .expect("exists")
            .insert(
                vec![
                    Value::Int(i),
                    Value::Str(format!("student{i}")),
                    Value::Int(i % 100),
                    Value::Int(i % 30),
                ],
                &mut io,
            )
            .expect("unique ids");
    }
    db.analyze_all();

    // 2. Run a workload while the monitor watches.
    let engine = Engine::new();
    let mut monitor = WorkloadMonitor::new();
    let queries = [
        "SELECT id, name FROM students WHERE score > 95 AND class = 7",
        "SELECT id, name FROM students WHERE score > 90 AND class = 12",
        "SELECT id FROM students WHERE class = 3",
    ];
    for _ in 0..20 {
        for q in &queries {
            let stmt = parse_statement(q).expect("valid SQL");
            let out = engine.execute(&mut db, &stmt).expect("executes");
            monitor.record(&stmt, &out);
        }
    }
    let stmt = parse_statement(queries[0]).expect("valid SQL");
    let before = engine.execute(&mut db, &stmt).expect("executes");
    println!(
        "before tuning: {} rows read to answer {} rows",
        before.rows_read(),
        before.rows_sent()
    );

    // 3. One AIM tuning pass.
    let session = AimConfig::builder()
        .selection(SelectionConfig {
            min_executions: 2,
            min_benefit: 0.5,
            ..Default::default()
        })
        .session();
    let outcome = session.run(&mut db, &monitor).expect("tuning pass");
    println!(
        "\nAIM examined {} queries, generated {} candidates, created {} indexes in {:?}:",
        outcome.workload_size,
        outcome.candidates_generated,
        outcome.created.len(),
        outcome.elapsed
    );
    for c in &outcome.created {
        // Every recommendation carries its metrics-driven explanation.
        println!("  {}", c.explanation);
    }

    // 4. The same query after tuning.
    let after = engine.execute(&mut db, &stmt).expect("executes");
    println!(
        "\nafter tuning: {} rows read (was {}), cost {:.1} (was {:.1})",
        after.rows_read(),
        before.rows_read(),
        after.cost,
        before.cost
    );
    assert!(after.cost < before.cost);
}
