#!/usr/bin/env bash
# Workspace CI gate: release build, full test suite, lint-clean clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench_whatif smoke (what-if cache regression gate)"
# Exits non-zero if a repeated tuning pass over an unchanged database shows a
# 0% cache hit rate — i.e. epoch keying or statement fingerprinting broke.
./target/release/bench_whatif smoke

echo "== chaos smoke (fault-injection resilience gate)"
# Seeded fault schedule through the continuous tuning loop; exits non-zero on
# a consistency violation, a leaked partial pass, or disarmed-run divergence.
./target/release/chaos_smoke

echo "== explain smoke (explainability & introspection gate)"
# Validates the ExplainPlan JSON contract from a live `aim_cli explain` run,
# then exercises the introspection endpoint lifecycle (/metrics quantiles,
# /ledger chain, /profile, 404, shutdown port release).
./target/release/aim_cli explain --json demo \
    "SELECT id FROM orders WHERE customer_id = 7" \
    | ./target/release/explain_smoke

echo "== storage smoke (disk-engine durability & costing gate)"
# Runs the full bench_storage harness in smoke mode against a scratch
# directory: memory-vs-disk result equality, crash/reopen durability with
# index survival, buffer-pool + WAL traffic, and est-vs-actual page error.
./target/release/bench_storage smoke

echo "== selection smoke (batched costing & LP-selection gate)"
# Runs bench_selection in smoke mode: asserts batched what-if costs are
# bit-identical to sequential costing (per-slot to_bits equality), that the
# LP selector never loses to greedy, and exits non-zero when the batched
# path shows no speedup or a repeated batch never hits the what-if cache.
./target/release/bench_selection smoke

echo "== observe smoke (telemetry overhead gate)"
# Times the same point-select loop with telemetry absent vs disarmed (every
# hook invoked, all no-ops) vs armed+recording vs labeled (armed plus a
# rotating 64-tenant scope so every instrument records a dimensional twin),
# interleaved with rotating order. Exits non-zero when the disarmed overhead
# or the labeled-over-armed overhead exceeds its smoke bound, or when the
# artifact fails jsonv validation (labeled_overhead_pct must be numeric).
./target/release/bench_observe smoke

echo "== fleet smoke (fleet-scale budget-allocation gate)"
# Tunes a 12-tenant Zipf-skewed fleet through the FleetSession driver:
# every tenant must converge, the fleet-level knapsack split must not lose
# to the uniform per-shard split, budget must actually move beyond the
# uniform share, and the emitted artifact must be well-formed JSON
# (validated in-process via aim_telemetry::jsonv).
./target/release/bench_fleet smoke

echo "== ci: all checks passed"
