#!/usr/bin/env bash
# Workspace CI gate: release build, full test suite, lint-clean clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== ci: all checks passed"
